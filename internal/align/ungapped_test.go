package align

import (
	"testing"
	"testing/quick"

	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
)

func TestWindowScoreIdentical(t *testing.T) {
	m := matrix.NewMatchMismatch(2, -1)
	w := alphabet.MustEncodeProtein("ARNDAR")
	if got := WindowScore(w, w, m); got != 12 {
		t.Errorf("identical window score = %d, want 12", got)
	}
}

func TestWindowScoreBestSegment(t *testing.T) {
	m := matrix.NewMatchMismatch(1, -1)
	a := alphabet.MustEncodeProtein("AAAARRRR")
	b := alphabet.MustEncodeProtein("AAAAAAAA")
	// Best segment: the 4 leading matches.
	if got := WindowScore(a, b, m); got != 4 {
		t.Errorf("score = %d, want 4", got)
	}
	// Segment in the middle must be found despite bad flanks.
	a2 := alphabet.MustEncodeProtein("RRAAAARR")
	b2 := alphabet.MustEncodeProtein("AAAAAAAA")
	if got := WindowScore(a2, b2, m); got != 4 {
		t.Errorf("middle segment score = %d, want 4", got)
	}
}

func TestWindowScoreAllNegative(t *testing.T) {
	m := matrix.NewMatchMismatch(1, -1)
	a := alphabet.MustEncodeProtein("AAAA")
	b := alphabet.MustEncodeProtein("RRRR")
	if got := WindowScore(a, b, m); got != 0 {
		t.Errorf("all-mismatch score = %d, want 0", got)
	}
}

// bruteBestSegment computes max over all contiguous segments of the
// pair-score sum — the independent O(n²) definition of WindowScore.
func bruteBestSegment(a, b []byte, m *matrix.Matrix) int {
	best := 0
	for i := 0; i < len(a); i++ {
		sum := 0
		for j := i; j < len(a); j++ {
			sum += m.Score(a[j], b[j])
			if sum > best {
				best = sum
			}
		}
	}
	return best
}

func TestWindowScoreMatchesBruteForce(t *testing.T) {
	m := matrix.BLOSUM62
	f := func(raw0, raw1 [24]byte) bool {
		a := make([]byte, 24)
		b := make([]byte, 24)
		for i := 0; i < 24; i++ {
			a[i] = raw0[i] % alphabet.NumStandardAA
			b[i] = raw1[i] % alphabet.NumStandardAA
		}
		return WindowScore(a, b, m) == bruteBestSegment(a, b, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxPrefixScoreMatchesBruteForce(t *testing.T) {
	m := matrix.BLOSUM62
	f := func(raw0, raw1 [16]byte) bool {
		a := make([]byte, 16)
		b := make([]byte, 16)
		for i := 0; i < 16; i++ {
			a[i] = raw0[i] % alphabet.NumStandardAA
			b[i] = raw1[i] % alphabet.NumStandardAA
		}
		best, sum := 0, 0
		for k := 0; k < 16; k++ {
			sum += m.Score(a[k], b[k])
			if sum > best {
				best = sum
			}
		}
		return MaxPrefixScore(a, b, m) == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowScoreDominatesMaxPrefix(t *testing.T) {
	// The clamped variant can only be larger or equal: dropping a
	// negative prefix never hurts.
	m := matrix.BLOSUM62
	f := func(raw0, raw1 [32]byte) bool {
		a := make([]byte, 32)
		b := make([]byte, 32)
		for i := 0; i < 32; i++ {
			a[i] = raw0[i] % alphabet.NumStandardAA
			b[i] = raw1[i] % alphabet.NumStandardAA
		}
		return WindowScore(a, b, m) >= MaxPrefixScore(a, b, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowScoreSymmetric(t *testing.T) {
	m := matrix.BLOSUM62 // symmetric matrix ⇒ symmetric window score
	f := func(raw0, raw1 [12]byte) bool {
		a := make([]byte, 12)
		b := make([]byte, 12)
		for i := 0; i < 12; i++ {
			a[i] = raw0[i] % alphabet.NumAA
			b[i] = raw1[i] % alphabet.NumAA
		}
		return WindowScore(a, b, m) == WindowScore(b, a, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendUngappedIdentical(t *testing.T) {
	m := matrix.NewMatchMismatch(1, -2)
	s := alphabet.MustEncodeProtein("ARNDCQEGHILK")
	got := ExtendUngapped(s, s, 4, 4, 3, 10, m)
	if got.Score != len(s) {
		t.Errorf("score = %d, want %d", got.Score, len(s))
	}
	if got.QStart != 0 || got.QEnd != len(s) || got.SStart != 0 || got.SEnd != len(s) {
		t.Errorf("extension did not cover the identity: %+v", got)
	}
}

func TestExtendUngappedStopsAtXDrop(t *testing.T) {
	m := matrix.NewMatchMismatch(1, -5)
	// Identical core of 6, then garbage on both sides.
	q := alphabet.MustEncodeProtein("RRRRAAAAAARRRR")
	s := alphabet.MustEncodeProtein("DDDDAAAAAADDDD")
	got := ExtendUngapped(q, s, 4, 4, 6, 4, m)
	if got.Score != 6 {
		t.Errorf("score = %d, want 6 (the core)", got.Score)
	}
	if got.QStart != 4 || got.QEnd != 10 {
		t.Errorf("interval = [%d,%d), want [4,10)", got.QStart, got.QEnd)
	}
}

func TestExtendUngappedAsymmetricSeedPos(t *testing.T) {
	m := matrix.NewMatchMismatch(2, -3)
	q := alphabet.MustEncodeProtein("AAAAWWWW")
	s := alphabet.MustEncodeProtein("RRAAWWWW")
	// Seed at q[4:8]=WWWW, s[4:8]=WWWW; left extension picks up AA at 2,3.
	got := ExtendUngapped(q, s, 4, 4, 4, 20, m)
	want := 4*2 + 2*2 - 0 // 4 W matches + 2 A matches; stops before RR/AA mismatches?
	// Left: positions 3,2 match (A/A: +2 each, best=4), positions 1,0 are
	// A vs R (-3 each) → running drops, best stays 4.
	if got.Score != want {
		t.Errorf("score = %d, want %d", got.Score, want)
	}
	if got.QStart != 2 {
		t.Errorf("QStart = %d, want 2", got.QStart)
	}
}

func TestExtendUngappedAtBoundaries(t *testing.T) {
	m := matrix.NewMatchMismatch(1, -1)
	q := alphabet.MustEncodeProtein("AAAA")
	s := alphabet.MustEncodeProtein("AAAA")
	got := ExtendUngapped(q, s, 0, 0, 4, 10, m)
	if got.Score != 4 || got.QStart != 0 || got.QEnd != 4 {
		t.Errorf("boundary seed: %+v", got)
	}
}

func TestScoringUsesMatrixTableLayout(t *testing.T) {
	// Regression test for the table stride: scoring must index the dense
	// table as row*alphabet.NumAA+col for every residue pair, including
	// the non-standard codes (B, Z, X, *) in rows ≥ 20 where a wrong
	// stride silently reads a neighbouring row. Build a matrix where
	// every pair has a unique positive score so any stride error changes
	// the result.
	table := make([]int8, alphabet.NumAA*alphabet.NumAA)
	for a := 0; a < alphabet.NumAA; a++ {
		for b := 0; b < alphabet.NumAA; b++ {
			table[a*alphabet.NumAA+b] = int8(a*5 + b%5 + 1)
		}
	}
	m, err := matrix.New("layout", table)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < alphabet.NumAA; a++ {
		for b := 0; b < alphabet.NumAA; b++ {
			want := m.Score(byte(a), byte(b))
			if got := WindowScore([]byte{byte(a)}, []byte{byte(b)}, m); got != want {
				t.Fatalf("WindowScore(%d,%d) = %d, want %d (table stride broken)", a, b, got, want)
			}
			if got := MaxPrefixScore([]byte{byte(a)}, []byte{byte(b)}, m); got != want {
				t.Fatalf("MaxPrefixScore(%d,%d) = %d, want %d (table stride broken)", a, b, got, want)
			}
			ext := ExtendUngapped([]byte{byte(a)}, []byte{byte(b)}, 0, 0, 1, 10, m)
			if ext.Score != want {
				t.Fatalf("ExtendUngapped(%d,%d) = %d, want %d (table stride broken)", a, b, ext.Score, want)
			}
		}
	}
}
