package bank

import (
	"fmt"
	"math/rand"

	"seedblast/internal/alphabet"
	"seedblast/internal/translate"
)

// FamilyConfig parameterises GenerateFamilyBenchmark.
type FamilyConfig struct {
	Families         int     // number of protein families (the paper uses 102 queries)
	MembersPerFamily int     // homologs planted per family
	MemberLen        int     // ancestor protein length
	Divergence       float64 // per-residue substitution rate between members
	DecoyGenes       int     // unrelated genes planted as noise
	GenomeLen        int     // subject genome length in nucleotides
	Seed             int64
}

func (c FamilyConfig) withDefaults() FamilyConfig {
	if c.Families == 0 {
		c.Families = 20
	}
	if c.MembersPerFamily == 0 {
		c.MembersPerFamily = 4
	}
	if c.MemberLen == 0 {
		c.MemberLen = 200
	}
	if c.Divergence == 0 {
		c.Divergence = 0.35
	}
	if c.DecoyGenes == 0 {
		c.DecoyGenes = c.Families * c.MembersPerFamily
	}
	if c.GenomeLen == 0 {
		needed := (c.Families*c.MembersPerFamily + c.DecoyGenes) * c.MemberLen * 3
		c.GenomeLen = needed*2 + 50_000
	}
	return c
}

// FamilyBenchmark is the synthetic stand-in for the paper's §4.4
// evaluation (102 queries against the yeast genome, truth by family
// annotation): queries with known family labels are searched against a
// genome containing planted homologs of every family plus decoys.
type FamilyBenchmark struct {
	Queries     *Bank        // one query protein per family
	QueryFamily []int        // family id of each query
	Genome      []byte       // encoded subject DNA
	Members     []PlantedHit // planted family members with genome intervals
	NumDecoys   int          // unrelated genes planted as noise
}

// PlantedHit is a planted family member: a genome interval whose
// translation is homologous to every query of the same family.
type PlantedHit struct {
	Family int
	Start  int // forward-strand nucleotide offset
	NucLen int
	Frame  translate.Frame
}

// GenerateFamilyBenchmark builds the sensitivity/selectivity workload.
// Every family has one query (a mutated copy of the ancestor) and
// MembersPerFamily planted genome members (independently mutated
// copies), so an ideal search ranks all same-family intervals above the
// decoys.
func GenerateFamilyBenchmark(cfg FamilyConfig) (*FamilyBenchmark, error) {
	cfg = cfg.withDefaults()
	rng := NewRNG(cfg.Seed)

	queries := New("family-queries")
	members := New("family-members")
	memberFamily := make([]int, 0, cfg.Families*cfg.MembersPerFamily)
	for fam := 0; fam < cfg.Families; fam++ {
		ancestor := RandomProtein(rng, cfg.MemberLen)
		query := MutateProtein(rng, ancestor, cfg.Divergence/2)
		queries.Add(fmt.Sprintf("query%03d", fam), query)
		for m := 0; m < cfg.MembersPerFamily; m++ {
			member := MutateProtein(rng, ancestor, cfg.Divergence)
			members.Add(fmt.Sprintf("fam%03d_m%d", fam, m), member)
			memberFamily = append(memberFamily, fam)
		}
	}
	queryFamily := make([]int, cfg.Families)
	for i := range queryFamily {
		queryFamily[i] = i
	}

	// Background genome, then every member planted exactly once, then
	// unrelated decoy genes filling the remaining space.
	dna := make([]byte, cfg.GenomeLen)
	for i := range dna {
		dna[i] = byte(rng.Intn(4))
	}
	occupied := make([]bool, cfg.GenomeLen)
	bench := &FamilyBenchmark{
		Queries:     queries,
		QueryFamily: queryFamily,
	}
	for idx := 0; idx < members.Len(); idx++ {
		gene, err := plantOne(rng, dna, occupied, members.Seq(idx))
		if err != nil {
			return nil, fmt.Errorf("bank: planting family member %d: %w", idx, err)
		}
		bench.Members = append(bench.Members, PlantedHit{
			Family: memberFamily[idx],
			Start:  gene.Start,
			NucLen: gene.NucLen,
			Frame:  gene.Frame,
		})
	}
	for d := 0; d < cfg.DecoyGenes; d++ {
		decoy := RandomProtein(rng, cfg.MemberLen)
		if _, err := plantOne(rng, dna, occupied, decoy); err != nil {
			break // genome full: fewer decoys, still a valid benchmark
		}
		bench.NumDecoys++
	}
	bench.Genome = dna
	return bench, nil
}

// plantOne reverse-translates a protein and writes it into a free slot
// of the genome on a random strand, marking the interval occupied.
func plantOne(rng *rand.Rand, dna []byte, occupied []bool, protein []byte) (PlantedGene, error) {
	coding, err := ReverseTranslate(rng, protein)
	if err != nil {
		return PlantedGene{}, err
	}
	start, ok := findSlot(rng, occupied, len(coding))
	if !ok {
		return PlantedGene{}, fmt.Errorf("no free slot for %d nucleotides", len(coding))
	}
	reverse := rng.Intn(2) == 1
	placed := coding
	if reverse {
		placed = alphabet.ReverseComplement(coding)
	}
	copy(dna[start:], placed)
	for i := start; i < start+len(placed); i++ {
		occupied[i] = true
	}
	return PlantedGene{
		Start:  start,
		NucLen: len(placed),
		Frame:  frameOf(start, len(placed), len(dna), reverse),
	}, nil
}

// TrueHit reports whether a genome interval [start, start+nucLen) is a
// true positive for family fam: it must overlap a planted member of
// that family by at least half the member's length.
func (fb *FamilyBenchmark) TrueHit(fam, start, nucLen int) bool {
	for _, m := range fb.Members {
		if m.Family != fam {
			continue
		}
		lo := max(start, m.Start)
		hi := min(start+nucLen, m.Start+m.NucLen)
		if hi-lo >= m.NucLen/2 {
			return true
		}
	}
	return false
}

// FamilySize returns the number of planted members of a family.
func (fb *FamilyBenchmark) FamilySize(fam int) int {
	n := 0
	for _, m := range fb.Members {
		if m.Family == fam {
			n++
		}
	}
	return n
}
