package bank

import (
	"testing"

	"seedblast/internal/translate"
)

func smallFamilyCfg() FamilyConfig {
	return FamilyConfig{
		Families:         4,
		MembersPerFamily: 3,
		MemberLen:        80,
		Divergence:       0.3,
		DecoyGenes:       5,
		Seed:             21,
	}
}

func TestFamilyBenchmarkStructure(t *testing.T) {
	fb, err := GenerateFamilyBenchmark(smallFamilyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if fb.Queries.Len() != 4 {
		t.Fatalf("queries = %d", fb.Queries.Len())
	}
	if len(fb.Members) != 12 {
		t.Fatalf("members = %d, want 12", len(fb.Members))
	}
	if fb.NumDecoys == 0 {
		t.Error("no decoys planted")
	}
	for fam := 0; fam < 4; fam++ {
		if fb.FamilySize(fam) != 3 {
			t.Errorf("family %d size %d, want 3", fam, fb.FamilySize(fam))
		}
	}
}

func TestFamilyMembersReadBackInFrame(t *testing.T) {
	fb, err := GenerateFamilyBenchmark(smallFamilyCfg())
	if err != nil {
		t.Fatal(err)
	}
	frames := translate.SixFrames(fb.Genome)
	frameProt := map[translate.Frame][]byte{}
	for _, ft := range frames {
		frameProt[ft.Frame] = ft.Protein
	}
	for i, m := range fb.Members {
		codonStart := m.Start
		if m.Frame < 0 {
			codonStart = m.Start + m.NucLen - 3
		}
		aaPos := translate.ProteinPos(m.Frame, codonStart, len(fb.Genome))
		if aaPos < 0 {
			t.Fatalf("member %d not aligned to frame %s", i, m.Frame)
		}
		if aaPos+m.NucLen/3 > len(frameProt[m.Frame]) {
			t.Fatalf("member %d extends past frame translation", i)
		}
	}
}

func TestTrueHitOverlapRule(t *testing.T) {
	fb := &FamilyBenchmark{
		Members: []PlantedHit{{Family: 2, Start: 1000, NucLen: 300}},
	}
	if !fb.TrueHit(2, 1000, 300) {
		t.Error("exact overlap not recognised")
	}
	if !fb.TrueHit(2, 1100, 300) {
		t.Error("half overlap not recognised")
	}
	if fb.TrueHit(2, 1260, 300) {
		t.Error("small overlap should not count")
	}
	if fb.TrueHit(1, 1000, 300) {
		t.Error("wrong family matched")
	}
}

func TestFamilyBenchmarkDeterministic(t *testing.T) {
	a, err := GenerateFamilyBenchmark(smallFamilyCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFamilyBenchmark(smallFamilyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Genome) != string(b.Genome) {
		t.Error("same seed produced different genomes")
	}
}

func TestFamilyBenchmarkTooSmallGenome(t *testing.T) {
	cfg := smallFamilyCfg()
	cfg.GenomeLen = 500 // cannot hold 12 members of 240nt
	if _, err := GenerateFamilyBenchmark(cfg); err == nil {
		t.Error("overfull genome accepted")
	}
}
