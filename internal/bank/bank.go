// Package bank holds sets of protein sequences (the paper's "banks")
// and generates the synthetic workloads that stand in for the paper's
// data: NR protein banks of 1K-30K sequences, the Human chromosome 1
// genome, and the yeast family benchmark used for ROC50/AP scoring.
// All generators are deterministic given a seed.
package bank

import (
	"fmt"

	"seedblast/internal/alphabet"
	"seedblast/internal/seqio"
)

// Bank is an ordered collection of encoded protein sequences.
type Bank struct {
	name  string
	ids   []string
	seqs  [][]byte
	total int
}

// New returns an empty bank with the given name.
func New(name string) *Bank {
	return &Bank{name: name}
}

// Name returns the bank's name.
func (b *Bank) Name() string { return b.name }

// Add appends a sequence. The slice is retained, not copied.
func (b *Bank) Add(id string, seq []byte) {
	b.ids = append(b.ids, id)
	b.seqs = append(b.seqs, seq)
	b.total += len(seq)
}

// Len returns the number of sequences.
func (b *Bank) Len() int { return len(b.seqs) }

// Seq returns sequence i. Callers must not modify it.
func (b *Bank) Seq(i int) []byte { return b.seqs[i] }

// ID returns the identifier of sequence i.
func (b *Bank) ID(i int) string { return b.ids[i] }

// TotalResidues returns the summed length of all sequences — the
// "amino acids" count the paper reports per bank.
func (b *Bank) TotalResidues() int { return b.total }

// FromRecords builds a protein bank from FASTA records, encoding each
// sequence into protein codes.
func FromRecords(name string, recs []*seqio.Record) (*Bank, error) {
	b := New(name)
	for _, r := range recs {
		seq, err := alphabet.EncodeProtein(string(r.Seq))
		if err != nil {
			return nil, fmt.Errorf("bank: record %s: %w", r.ID, err)
		}
		b.Add(r.ID, seq)
	}
	return b, nil
}

// LoadFASTA reads a protein bank from a FASTA file.
func LoadFASTA(name, path string) (*Bank, error) {
	recs, err := seqio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromRecords(name, recs)
}

// Records converts the bank back to FASTA records with ASCII residues.
func (b *Bank) Records() []*seqio.Record {
	out := make([]*seqio.Record, b.Len())
	for i := range b.seqs {
		out[i] = &seqio.Record{
			ID:  b.ids[i],
			Seq: []byte(alphabet.DecodeProtein(b.seqs[i])),
		}
	}
	return out
}
