package bank

import (
	"fmt"
	"math/rand"
	"sort"

	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
	"seedblast/internal/translate"
)

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// sampler draws amino acids from the Robinson & Robinson background
// distribution by inverse CDF.
type sampler struct {
	cdf [alphabet.NumStandardAA]float64
}

func newSampler() *sampler {
	s := &sampler{}
	freqs := matrix.RobinsonFrequencies()
	var cum float64
	for i, p := range freqs {
		cum += p
		s.cdf[i] = cum
	}
	s.cdf[alphabet.NumStandardAA-1] = 1 // absorb rounding
	return s
}

func (s *sampler) draw(rng *rand.Rand) byte {
	u := rng.Float64()
	// 20 entries: linear scan is faster than binary search here.
	for i, c := range s.cdf {
		if u <= c {
			return byte(i)
		}
	}
	return alphabet.NumStandardAA - 1
}

// RandomProtein generates a protein of the given length with Robinson
// background composition.
func RandomProtein(rng *rand.Rand, length int) []byte {
	s := newSampler()
	out := make([]byte, length)
	for i := range out {
		out[i] = s.draw(rng)
	}
	return out
}

// MutateProtein returns a copy of seq where each residue is replaced by
// a background-distributed residue with probability subRate. The result
// has the same length (no indels), which suits ungapped-stage workloads;
// gapped workloads add indels separately.
func MutateProtein(rng *rand.Rand, seq []byte, subRate float64) []byte {
	s := newSampler()
	out := append([]byte(nil), seq...)
	for i := range out {
		if rng.Float64() < subRate {
			out[i] = s.draw(rng)
		}
	}
	return out
}

// InsertIndels applies random single-residue insertions and deletions,
// each occurring per position with probability indelRate.
func InsertIndels(rng *rand.Rand, seq []byte, indelRate float64) []byte {
	s := newSampler()
	out := make([]byte, 0, len(seq)+4)
	for _, c := range seq {
		r := rng.Float64()
		switch {
		case r < indelRate/2: // deletion
		case r < indelRate: // insertion before the residue
			out = append(out, s.draw(rng), c)
		default:
			out = append(out, c)
		}
	}
	return out
}

// ProteinConfig parameterises GenerateProteins.
type ProteinConfig struct {
	N         int   // number of proteins
	MeanLen   int   // mean protein length; the paper's banks average ≈335 aa
	LenJitter int   // uniform ± jitter on length
	Seed      int64 // RNG seed
}

// withDefaults fills zero fields with defaults.
func (c ProteinConfig) withDefaults() ProteinConfig {
	if c.MeanLen == 0 {
		c.MeanLen = 330
	}
	if c.LenJitter == 0 {
		c.LenJitter = c.MeanLen / 3
	}
	return c
}

// GenerateProteins creates a synthetic protein bank with background
// composition. It stands in for the paper's NR-derived banks; bank size
// N is the experiments' sweep variable.
func GenerateProteins(cfg ProteinConfig) *Bank {
	cfg = cfg.withDefaults()
	rng := NewRNG(cfg.Seed)
	s := newSampler()
	b := New(fmt.Sprintf("proteins-%d", cfg.N))
	for i := 0; i < cfg.N; i++ {
		length := cfg.MeanLen
		if cfg.LenJitter > 0 {
			length += rng.Intn(2*cfg.LenJitter+1) - cfg.LenJitter
		}
		if length < 20 {
			length = 20
		}
		seq := make([]byte, length)
		for j := range seq {
			seq[j] = s.draw(rng)
		}
		b.Add(fmt.Sprintf("prot%06d", i), seq)
	}
	return b
}

// aaCodons maps each standard amino acid to its codons (as 3-byte
// nucleotide code arrays), built once from the genetic code.
var aaCodons [alphabet.NumStandardAA][][3]byte

func init() {
	for n0 := byte(0); n0 < 4; n0++ {
		for n1 := byte(0); n1 < 4; n1++ {
			for n2 := byte(0); n2 < 4; n2++ {
				aa := translate.Codon(n0, n1, n2)
				if alphabet.IsStandardAA(aa) {
					aaCodons[aa] = append(aaCodons[aa], [3]byte{n0, n1, n2})
				}
			}
		}
	}
}

// ReverseTranslate encodes a protein as DNA, choosing uniformly among
// synonymous codons.
func ReverseTranslate(rng *rand.Rand, protein []byte) ([]byte, error) {
	out := make([]byte, 0, 3*len(protein))
	for i, aa := range protein {
		if !alphabet.IsStandardAA(aa) {
			return nil, fmt.Errorf("bank: cannot reverse-translate residue %c at %d",
				alphabet.ProteinLetter(aa), i)
		}
		cs := aaCodons[aa]
		c := cs[rng.Intn(len(cs))]
		out = append(out, c[0], c[1], c[2])
	}
	return out, nil
}

// PlantedGene records where a protein was planted in a synthetic genome.
type PlantedGene struct {
	ProteinIdx int             // index into the source bank
	Start      int             // forward-strand nucleotide offset of the gene
	NucLen     int             // nucleotide length (3 × amino acids)
	Frame      translate.Frame // reading frame the gene occupies
}

// GenomeConfig parameterises GenerateGenome.
type GenomeConfig struct {
	Length       int     // total nucleotides
	Source       *Bank   // proteins to plant (required if PlantCount > 0)
	PlantCount   int     // number of genes to plant
	PlantSubRate float64 // per-residue substitution rate applied before planting
	Seed         int64
}

// GenerateGenome creates a synthetic genome: background DNA with
// PlantCount mutated, reverse-translated genes from Source inserted at
// non-overlapping positions on both strands. It stands in for the
// paper's Human chromosome 1, guaranteeing that bank-vs-genome
// comparison finds similarity regions. The returned genes are sorted by
// Start.
func GenerateGenome(cfg GenomeConfig) ([]byte, []PlantedGene, error) {
	if cfg.Length <= 0 {
		return nil, nil, fmt.Errorf("bank: genome length must be positive")
	}
	rng := NewRNG(cfg.Seed)
	dna := make([]byte, cfg.Length)
	for i := range dna {
		dna[i] = byte(rng.Intn(4))
	}
	if cfg.PlantCount == 0 {
		return dna, nil, nil
	}
	if cfg.Source == nil || cfg.Source.Len() == 0 {
		return nil, nil, fmt.Errorf("bank: PlantCount %d requires a non-empty Source", cfg.PlantCount)
	}
	var genes []PlantedGene
	occupied := make([]bool, cfg.Length)
	for g := 0; g < cfg.PlantCount; g++ {
		idx := rng.Intn(cfg.Source.Len())
		protein := cfg.Source.Seq(idx)
		if cfg.PlantSubRate > 0 {
			protein = MutateProtein(rng, protein, cfg.PlantSubRate)
		}
		coding, err := ReverseTranslate(rng, protein)
		if err != nil {
			return nil, nil, err
		}
		if len(coding) > cfg.Length {
			continue // gene longer than genome: skip
		}
		start, ok := findSlot(rng, occupied, len(coding))
		if !ok {
			continue // genome too crowded: plant fewer genes
		}
		reverse := rng.Intn(2) == 1
		placed := coding
		if reverse {
			placed = alphabet.ReverseComplement(coding)
		}
		copy(dna[start:], placed)
		for i := start; i < start+len(placed); i++ {
			occupied[i] = true
		}
		frame := frameOf(start, len(placed), cfg.Length, reverse)
		genes = append(genes, PlantedGene{
			ProteinIdx: idx,
			Start:      start,
			NucLen:     len(placed),
			Frame:      frame,
		})
	}
	sort.Slice(genes, func(i, j int) bool { return genes[i].Start < genes[j].Start })
	return dna, genes, nil
}

// findSlot picks a random unoccupied interval of the given length,
// retrying a bounded number of times.
func findSlot(rng *rand.Rand, occupied []bool, length int) (int, bool) {
	if length > len(occupied) {
		return 0, false
	}
	for attempt := 0; attempt < 64; attempt++ {
		start := rng.Intn(len(occupied) - length + 1)
		free := true
		for i := start; i < start+length; i++ {
			if occupied[i] {
				free = false
				break
			}
		}
		if free {
			return start, true
		}
	}
	return 0, false
}

// frameOf computes the reading frame a gene planted at the given
// forward-strand interval occupies.
func frameOf(start, nucLen, genomeLen int, reverse bool) translate.Frame {
	if !reverse {
		return translate.Frame(start%3 + 1)
	}
	// On the reverse strand the frame is determined by the distance of
	// the gene's end from the genome's end.
	offset := (genomeLen - (start + nucLen)) % 3
	return translate.Frame(-(offset + 1))
}
