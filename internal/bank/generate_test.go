package bank

import (
	"math"
	"testing"

	"seedblast/internal/alphabet"
	"seedblast/internal/matrix"
	"seedblast/internal/translate"
)

func TestRandomProteinComposition(t *testing.T) {
	rng := NewRNG(1)
	seq := RandomProtein(rng, 200_000)
	var counts [alphabet.NumStandardAA]int
	for _, c := range seq {
		if !alphabet.IsStandardAA(c) {
			t.Fatalf("non-standard residue %d generated", c)
		}
		counts[c]++
	}
	freqs := matrix.RobinsonFrequencies()
	for aa, want := range freqs {
		got := float64(counts[aa]) / float64(len(seq))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("residue %c frequency %.4f, want %.4f",
				alphabet.ProteinLetter(byte(aa)), got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateProteins(ProteinConfig{N: 10, Seed: 42})
	b := GenerateProteins(ProteinConfig{N: 10, Seed: 42})
	c := GenerateProteins(ProteinConfig{N: 10, Seed: 43})
	for i := 0; i < 10; i++ {
		if string(a.Seq(i)) != string(b.Seq(i)) {
			t.Fatal("same seed produced different banks")
		}
	}
	same := true
	for i := 0; i < 10; i++ {
		if string(a.Seq(i)) != string(c.Seq(i)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical banks")
	}
}

func TestGenerateProteinsSizes(t *testing.T) {
	cfg := ProteinConfig{N: 50, MeanLen: 100, LenJitter: 20, Seed: 7}
	b := GenerateProteins(cfg)
	if b.Len() != 50 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		l := len(b.Seq(i))
		if l < 80 || l > 120 {
			t.Errorf("sequence %d length %d outside jitter range", i, l)
		}
	}
}

func TestMutateProteinRate(t *testing.T) {
	rng := NewRNG(3)
	orig := RandomProtein(rng, 50_000)
	mut := MutateProtein(rng, orig, 0.3)
	if len(mut) != len(orig) {
		t.Fatal("MutateProtein changed length")
	}
	diff := 0
	for i := range orig {
		if orig[i] != mut[i] {
			diff++
		}
	}
	// Expected observed difference ≈ rate × (1 − 1/20 backgound re-draws).
	rate := float64(diff) / float64(len(orig))
	if rate < 0.22 || rate > 0.32 {
		t.Errorf("observed mutation rate %.3f for requested 0.3", rate)
	}
	// Zero rate changes nothing.
	same := MutateProtein(rng, orig, 0)
	for i := range orig {
		if same[i] != orig[i] {
			t.Fatal("zero-rate mutation altered sequence")
		}
	}
}

func TestInsertIndels(t *testing.T) {
	rng := NewRNG(4)
	orig := RandomProtein(rng, 10_000)
	out := InsertIndels(rng, orig, 0.1)
	// Insertions and deletions balance in expectation; length stays close.
	if math.Abs(float64(len(out)-len(orig))) > 300 {
		t.Errorf("indel length drift %d", len(out)-len(orig))
	}
	if string(out) == string(orig) {
		t.Error("indels did not change sequence")
	}
}

func TestReverseTranslateRoundTrip(t *testing.T) {
	rng := NewRNG(5)
	protein := RandomProtein(rng, 300)
	dna, err := ReverseTranslate(rng, protein)
	if err != nil {
		t.Fatal(err)
	}
	if len(dna) != 3*len(protein) {
		t.Fatalf("dna length %d, want %d", len(dna), 3*len(protein))
	}
	back := translate.Translate(dna)
	if string(back) != string(protein) {
		t.Error("translation of reverse translation differs from original")
	}
}

func TestReverseTranslateRejectsAmbiguous(t *testing.T) {
	rng := NewRNG(6)
	if _, err := ReverseTranslate(rng, []byte{alphabet.Xaa}); err == nil {
		t.Error("X accepted for reverse translation")
	}
}

func TestGenerateGenomePlainBackground(t *testing.T) {
	dna, genes, err := GenerateGenome(GenomeConfig{Length: 10_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(dna) != 10_000 || genes != nil {
		t.Fatalf("len=%d genes=%v", len(dna), genes)
	}
	for _, c := range dna {
		if c >= 4 {
			t.Fatal("invalid nucleotide in background")
		}
	}
}

func TestGenerateGenomeErrors(t *testing.T) {
	if _, _, err := GenerateGenome(GenomeConfig{Length: 0}); err == nil {
		t.Error("zero length accepted")
	}
	if _, _, err := GenerateGenome(GenomeConfig{Length: 100, PlantCount: 1}); err == nil {
		t.Error("planting without source accepted")
	}
}

func TestGenerateGenomePlantsTranslatableGenes(t *testing.T) {
	source := GenerateProteins(ProteinConfig{N: 5, MeanLen: 60, LenJitter: 5, Seed: 9})
	dna, genes, err := GenerateGenome(GenomeConfig{
		Length:     50_000,
		Source:     source,
		PlantCount: 8,
		Seed:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(genes) == 0 {
		t.Fatal("no genes planted")
	}
	frames := translate.SixFrames(dna)
	frameProt := map[translate.Frame][]byte{}
	for _, ft := range frames {
		frameProt[ft.Frame] = ft.Protein
	}
	for gi, g := range genes {
		protein := source.Seq(g.ProteinIdx)
		if g.NucLen != 3*len(protein) {
			t.Errorf("gene %d NucLen %d, want %d", gi, g.NucLen, 3*len(protein))
		}
		// The planted gene must read back exactly in its declared frame.
		aaPos := translate.ProteinPos(g.Frame, geneCodonStart(g), len(dna))
		if aaPos < 0 {
			t.Fatalf("gene %d: start %d is not a codon start in frame %s", gi, g.Start, g.Frame)
		}
		got := frameProt[g.Frame][aaPos : aaPos+len(protein)]
		if string(got) != string(protein) {
			t.Errorf("gene %d does not read back in frame %s", gi, g.Frame)
		}
	}
}

// geneCodonStart returns the forward-strand coordinate of the first
// codon of the gene in its frame: for forward frames it is Start; for
// reverse frames the first codon is at the right end of the interval.
func geneCodonStart(g PlantedGene) int {
	if g.Frame > 0 {
		return g.Start
	}
	return g.Start + g.NucLen - 3
}

func TestGenerateGenomeGenesDoNotOverlap(t *testing.T) {
	source := GenerateProteins(ProteinConfig{N: 3, MeanLen: 50, LenJitter: 0, Seed: 11})
	_, genes, err := GenerateGenome(GenomeConfig{
		Length:     20_000,
		Source:     source,
		PlantCount: 20,
		Seed:       12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(genes); i++ {
		if genes[i-1].Start+genes[i-1].NucLen > genes[i].Start {
			t.Fatalf("genes %d and %d overlap", i-1, i)
		}
	}
}

func TestFrameOfMatchesProteinPos(t *testing.T) {
	// frameOf must be consistent with translate.ProteinPos for both strands.
	for _, genomeLen := range []int{3000, 3001, 3002} {
		for start := 0; start < 30; start++ {
			nucLen := 300
			for _, reverse := range []bool{false, true} {
				f := frameOf(start, nucLen, genomeLen, reverse)
				if !f.Valid() {
					t.Fatalf("invalid frame %d", f)
				}
				var codonStart int
				if !reverse {
					codonStart = start
				} else {
					codonStart = start + nucLen - 3
				}
				if translate.ProteinPos(f, codonStart, genomeLen) < 0 {
					t.Fatalf("frameOf(%d,%d,%d,%v)=%s disagrees with ProteinPos",
						start, nucLen, genomeLen, reverse, f)
				}
			}
		}
	}
}
