package bank

import (
	"strings"
	"testing"

	"seedblast/internal/alphabet"
	"seedblast/internal/seqio"
)

func TestBankBasics(t *testing.T) {
	b := New("test")
	if b.Len() != 0 || b.TotalResidues() != 0 {
		t.Fatal("new bank not empty")
	}
	b.Add("a", alphabet.MustEncodeProtein("MKV"))
	b.Add("b", alphabet.MustEncodeProtein("WWWW"))
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.TotalResidues() != 7 {
		t.Errorf("TotalResidues = %d, want 7", b.TotalResidues())
	}
	if b.ID(1) != "b" || alphabet.DecodeProtein(b.Seq(1)) != "WWWW" {
		t.Error("sequence retrieval broken")
	}
	if b.Name() != "test" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestFromRecords(t *testing.T) {
	recs := []*seqio.Record{
		{ID: "p1", Seq: []byte("MKV")},
		{ID: "p2", Seq: []byte("arw")},
	}
	b, err := FromRecords("x", recs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || alphabet.DecodeProtein(b.Seq(1)) != "ARW" {
		t.Error("FromRecords mis-encoded")
	}
}

func TestFromRecordsInvalid(t *testing.T) {
	recs := []*seqio.Record{{ID: "bad", Seq: []byte("MK1")}}
	if _, err := FromRecords("x", recs); err == nil {
		t.Error("invalid residue accepted")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q should name the record", err)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	b := New("rt")
	b.Add("a", alphabet.MustEncodeProtein("MKVLLA"))
	recs := b.Records()
	back, err := FromRecords("rt", recs)
	if err != nil {
		t.Fatal(err)
	}
	if alphabet.DecodeProtein(back.Seq(0)) != "MKVLLA" {
		t.Error("Records round trip failed")
	}
}
