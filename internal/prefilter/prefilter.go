// Package prefilter implements an optional candidate-selection stage
// between step 1 (indexing) and step 2 (ungapped extension): a cheap
// hashed-seed diagonal scoring pass that ranks subject sequences per
// query and keeps only the top MaxCandidates, so the expensive
// extension stages run on a small survivor set instead of every
// (query, subject) pair that shares one seed hit — the SWORD
// database_hash / MMseqs2 prefilter design, adapted to this engine's
// subset-seed index.
//
// For each query position with an indexable seed key the stage probes
// the subject index's bucket and, for every occurrence, increments a
// compact int32 accumulator cell addressed by a hash of
// (subject sequence, diagonal band), where the band is the seed
// diagonal (subject offset − query offset) quantised to BandWidth
// residues. A subject's score is the maximum cell it touched — the
// densest run of co-diagonal seed hits, the same signal an ungapped
// extension rewards, at a fraction of the cost (one hash and one
// increment per seed pair instead of a W+2N window scoring).
//
// The table is intentionally lossy: two (subject, band) pairs may
// share a cell, which can only inflate a score, never deflate it. A
// subject with at least one seed hit therefore always scores ≥ 1, so
// with MaxCandidates ≥ the number of hit subjects the survivor set is
// exactly the set of subjects sharing a seed with the query and the
// downstream result is bit-identical to an unfiltered run — the
// monotonicity contract the equivalence tests pin.
//
// E-value statistics are unaffected by construction: the stage selects
// which pairs are extended but the search-space geometry handed to the
// gapped stage still describes the full subject bank.
package prefilter

import (
	"fmt"
	"math/bits"
	"sort"

	"seedblast/internal/bank"
	"seedblast/internal/index"
	"seedblast/internal/seed"
)

// Defaults for the accumulator shape. The 16-residue band matches the
// reach of a step-2 window around a seed; 2¹⁶ cells (256 KiB of
// int32s) keeps the whole table L2-resident per worker.
const (
	DefaultBandWidth = 16
	DefaultTableBits = 16
)

// diagBias shifts diagonals (subject offset − query offset, which can
// be negative) into the non-negative range before band quantisation,
// so banding is a plain arithmetic shift. Sequences are bounded far
// below 2³⁰ residues, so the biased value never overflows int32.
const diagBias = int32(1) << 30

// Config tunes the stage. The zero value is disabled: the pipeline
// bypasses the prefilter entirely and behaves bit-identically to an
// engine without it.
type Config struct {
	// MaxCandidates is the number of subject sequences kept per query,
	// ranked by diagonal-band score (ties broken by sequence number).
	// Zero or negative disables the stage.
	MaxCandidates int
	// BandWidth is the diagonal quantum in residues; it must be a
	// power of two. Zero means DefaultBandWidth.
	BandWidth int
	// TableBits sizes the accumulator at 2^TableBits cells. Zero means
	// DefaultTableBits. More bits mean fewer score-inflating cell
	// collisions at the cost of larger reset lists.
	TableBits int
}

// Enabled reports whether the configuration turns the stage on.
func (c Config) Enabled() bool { return c.MaxCandidates > 0 }

func (c Config) withDefaults() Config {
	if c.BandWidth <= 0 {
		c.BandWidth = DefaultBandWidth
	}
	if c.TableBits <= 0 {
		c.TableBits = DefaultTableBits
	}
	return c
}

func (c Config) validate() error {
	if c.BandWidth&(c.BandWidth-1) != 0 {
		return fmt.Errorf("prefilter: band width %d is not a power of two", c.BandWidth)
	}
	if c.TableBits > 28 {
		return fmt.Errorf("prefilter: table bits %d is unreasonably large (max 28)", c.TableBits)
	}
	return nil
}

// Candidate is one scored subject sequence.
type Candidate struct {
	Score int32
	Seq   uint32
}

// Result is the stage's outcome for one query shard.
type Result struct {
	// Survivors[q] lists the subject sequence numbers kept for
	// shard-local query q, sorted ascending.
	Survivors [][]uint32
	// Union is the ascending union of all queries' survivors — the
	// subject set step 2 needs an index for.
	Union []uint32
	// Queries is the number of queries scored (len(Survivors)).
	Queries int
	// Kept and Dropped count candidate (query, subject) pairs — pairs
	// sharing at least one seed hit — that survived and fell to the
	// top-K cut respectively. Kept+Dropped is the unfiltered candidate
	// pair count.
	Kept, Dropped int64
}

// Keeps reports whether subject s survived for shard-local query q.
func (r *Result) Keeps(q int, s uint32) bool {
	if q < 0 || q >= len(r.Survivors) {
		return false
	}
	sv := r.Survivors[q]
	i := sort.Search(len(sv), func(i int) bool { return sv[i] >= s })
	return i < len(sv) && sv[i] == s
}

// Run scores every query in the shard bank against the subject index
// and selects each query's top MaxCandidates subjects. The queries
// bank uses shard-local numbering (Survivors is indexed the same way);
// subject numbers are the index's own (global) numbering. Run is
// deterministic: scoring order, hashing and tie-breaks are all fixed,
// so the survivor sets are identical across runs and worker counts.
func Run(queries *bank.Bank, model seed.Model, ix1 *index.Index, cfg Config) (*Result, error) {
	if queries == nil || model == nil || ix1 == nil {
		return nil, fmt.Errorf("prefilter: queries, model and subject index are all required")
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("prefilter: Run called with a disabled config (MaxCandidates %d)", cfg.MaxCandidates)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	acc := newAccumulator(cfg, ix1.Bank().Len())
	res := &Result{
		Survivors: make([][]uint32, queries.Len()),
		Queries:   queries.Len(),
	}
	w := model.Width()
	inUnion := make([]bool, ix1.Bank().Len())
	var cand []Candidate
	for q := 0; q < queries.Len(); q++ {
		seq := queries.Seq(q)
		for off := 0; off+w <= len(seq); off++ {
			key, ok := model.Key(seq[off : off+w])
			if !ok {
				continue // unindexable window, exactly as step 1 skips it
			}
			entries, _ := ix1.Bucket(key)
			acc.addEntries(int32(off), entries)
		}
		cand = acc.appendCandidates(cand[:0])
		total := len(cand)
		kept := selectTopK(cand, cfg.MaxCandidates)
		sv := make([]uint32, len(kept))
		for i := range kept {
			sv[i] = kept[i].Seq
		}
		sort.Slice(sv, func(i, j int) bool { return sv[i] < sv[j] })
		res.Survivors[q] = sv
		res.Kept += int64(len(sv))
		res.Dropped += int64(total - len(sv))
		for _, s := range sv {
			if !inUnion[s] {
				inUnion[s] = true
				res.Union = append(res.Union, s)
			}
		}
		acc.reset()
	}
	sort.Slice(res.Union, func(i, j int) bool { return res.Union[i] < res.Union[j] })
	return res, nil
}

// selectTopK keeps the k best candidates under the deterministic
// ranking (score descending, then sequence number ascending), reusing
// cand's storage. Scores are small seed-hit counts, so the cut point
// comes from a score histogram in O(cand + maxScore) instead of a
// full comparison sort — the stage's hot path after the bucket scan.
func selectTopK(cand []Candidate, k int) []Candidate {
	if len(cand) <= k {
		return cand
	}
	var maxScore int32
	for _, c := range cand {
		if c.Score > maxScore {
			maxScore = c.Score
		}
	}
	hist := make([]int32, maxScore+1)
	for _, c := range cand {
		hist[c.Score]++
	}
	// Walk scores downward to the cut score t: everything above t is
	// kept outright, and the remaining slots go to the lowest sequence
	// numbers at t.
	taken := int32(0)
	t := maxScore
	for ; t > 1; t-- {
		if taken+hist[t] > int32(k) {
			break
		}
		taken += hist[t]
	}
	need := int32(k) - taken
	out := cand[:0]
	var ties []Candidate
	for _, c := range cand {
		switch {
		case c.Score > t:
			out = append(out, c)
		case c.Score == t:
			ties = append(ties, c)
		}
	}
	sort.Slice(ties, func(i, j int) bool { return ties[i].Seq < ties[j].Seq })
	return append(out, ties[:need]...)
}

// accumulator is the hashed (subject, diagonal band) score table plus
// the per-subject best-cell tracker. Both are reset sparsely through
// touched lists, so per-query cost scales with the query's seed hits
// rather than the table or bank size.
type accumulator struct {
	cells []int32 // 2^TableBits hashed (subject, band) counters
	mask  uint32
	shift uint    // log2(BandWidth)
	best  []int32 // per subject: max cell value it touched; 0 = untouched
	// touchedCells and touchedSeqs record which entries are nonzero so
	// reset is O(touched), not O(table+bank).
	touchedCells []uint32
	touchedSeqs  []uint32
}

func newAccumulator(cfg Config, numSubjects int) *accumulator {
	size := 1 << cfg.TableBits
	return &accumulator{
		cells: make([]int32, size),
		mask:  uint32(size - 1),
		shift: uint(bits.TrailingZeros(uint(cfg.BandWidth))),
		best:  make([]int32, numSubjects),
	}
}

// addEntries scores one query position's subject bucket: each
// occurrence lands one increment on its (subject, band) cell.
func (a *accumulator) addEntries(qoff int32, entries []index.Entry) {
	for _, e := range entries {
		a.add(e.Seq, int32(e.Off)-qoff)
	}
}

// add records one seed hit against subject s on diagonal diag.
func (a *accumulator) add(s uint32, diag int32) {
	band := (diag + diagBias) >> a.shift
	h := cellHash(s, band) & a.mask
	c := a.cells[h] + 1
	a.cells[h] = c
	if c == 1 {
		a.touchedCells = append(a.touchedCells, h)
	}
	if c > a.best[s] {
		if a.best[s] == 0 {
			a.touchedSeqs = append(a.touchedSeqs, s)
		}
		a.best[s] = c
	}
}

// appendCandidates appends every touched subject with its score to
// dst. The order is discovery order; callers rank with selectTopK,
// which imposes the deterministic total order.
func (a *accumulator) appendCandidates(dst []Candidate) []Candidate {
	for _, s := range a.touchedSeqs {
		dst = append(dst, Candidate{Score: a.best[s], Seq: s})
	}
	return dst
}

// reset clears only the touched state, readying the accumulator for
// the next query.
func (a *accumulator) reset() {
	for _, h := range a.touchedCells {
		a.cells[h] = 0
	}
	for _, s := range a.touchedSeqs {
		a.best[s] = 0
	}
	a.touchedCells = a.touchedCells[:0]
	a.touchedSeqs = a.touchedSeqs[:0]
}

// cellHash mixes (subject, band) into a table address
// (splitmix64-style finalizer; deterministic across runs and
// platforms).
func cellHash(s uint32, band int32) uint32 {
	x := uint64(s)<<32 | uint64(uint32(band))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}
