package prefilter

import (
	"encoding/binary"
	"testing"
)

// FuzzDiagAccumulator replays an arbitrary stream of seed hits and
// resets against both the sparse accumulator and a naive map-based
// reference sharing the same hash, checking that the touched-list
// bookkeeping (cell counts, per-subject best scores, sparse reset)
// never diverges. A divergence here would silently corrupt candidate
// ranking across queries.
func FuzzDiagAccumulator(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 0xff, 0, 0, 0, 0})
	f.Add(func() []byte {
		// A run that hammers one diagonal, then resets, then another.
		var b []byte
		for i := 0; i < 30; i++ {
			b = append(b, 1, byte(i%4), 0, 0, 0, 5)
		}
		b = append(b, 0, 0, 0, 0, 0, 0)
		for i := 0; i < 10; i++ {
			b = append(b, 1, 3, 0, 0, 0, byte(i))
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		const numSubjects = 32
		// Tiny table so collisions are exercised, small bands too.
		cfg := Config{MaxCandidates: 1, BandWidth: 4, TableBits: 6}.withDefaults()
		acc := newAccumulator(cfg, numSubjects)
		refCells := make(map[uint32]int32)
		refBest := make(map[uint32]int32)

		check := func() {
			t.Helper()
			cand := acc.appendCandidates(nil)
			if len(cand) != len(refBest) {
				t.Fatalf("accumulator tracks %d subjects, reference %d", len(cand), len(refBest))
			}
			for _, c := range cand {
				if refBest[c.Seq] != c.Score {
					t.Fatalf("subject %d: score %d, reference %d", c.Seq, c.Score, refBest[c.Seq])
				}
			}
		}

		for len(data) >= 6 {
			op := data[0]
			if op == 0 {
				check()
				acc.reset()
				refCells = make(map[uint32]int32)
				refBest = make(map[uint32]int32)
			} else {
				s := uint32(data[1]) % numSubjects
				diag := int32(binary.LittleEndian.Uint32(data[2:6]) % 4096)
				if op%2 == 0 {
					diag = -diag
				}
				acc.add(s, diag)
				band := (diag + diagBias) >> acc.shift
				h := cellHash(s, band) & acc.mask
				refCells[h]++
				if refCells[h] > refBest[s] {
					refBest[s] = refCells[h]
				}
			}
			data = data[6:]
		}
		check()

		// After a final reset the table must be fully clean: a stale cell
		// would leak score into the next query.
		acc.reset()
		for h, c := range acc.cells {
			if c != 0 {
				t.Fatalf("cell %d still %d after reset", h, c)
			}
		}
		for s, b := range acc.best {
			if b != 0 {
				t.Fatalf("subject %d best still %d after reset", s, b)
			}
		}
		if len(acc.touchedCells) != 0 || len(acc.touchedSeqs) != 0 {
			t.Fatal("touched lists not empty after reset")
		}
	})
}
