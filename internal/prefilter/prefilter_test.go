package prefilter

import (
	"fmt"
	"reflect"
	"testing"

	"seedblast/internal/bank"
	"seedblast/internal/index"
	"seedblast/internal/seed"
)

// testWorkload builds a query bank and an indexed subject bank.
func testWorkload(t *testing.T, nq, ns int) (*bank.Bank, *index.Index) {
	t.Helper()
	rng := bank.NewRNG(7)
	qb := bank.New("q")
	for i := 0; i < nq; i++ {
		qb.Add(fmt.Sprintf("q%d", i), bank.RandomProtein(rng, 80))
	}
	sb := bank.New("s")
	for i := 0; i < ns; i++ {
		sb.Add(fmt.Sprintf("s%d", i), bank.RandomProtein(rng, 150))
	}
	ix1, err := index.Build(sb, seed.Default(), 14)
	if err != nil {
		t.Fatal(err)
	}
	return qb, ix1
}

// naiveCandidates computes, per query, the set of subjects sharing at
// least one seed key occurrence — the stage's k=∞ contract.
func naiveCandidates(qb *bank.Bank, model seed.Model, ix1 *index.Index) [][]uint32 {
	out := make([][]uint32, qb.Len())
	w := model.Width()
	for q := 0; q < qb.Len(); q++ {
		in := make(map[uint32]bool)
		seq := qb.Seq(q)
		for off := 0; off+w <= len(seq); off++ {
			key, ok := model.Key(seq[off : off+w])
			if !ok {
				continue
			}
			entries, _ := ix1.Bucket(key)
			for _, e := range entries {
				in[e.Seq] = true
			}
		}
		for s := uint32(0); int(s) < ix1.Bank().Len(); s++ {
			if in[s] {
				out[q] = append(out[q], s)
			}
		}
	}
	return out
}

// TestWideOpenKeepsEveryCandidate pins the monotonicity contract: with
// MaxCandidates at least the subject count, the survivor sets are
// exactly the subjects sharing a seed hit, nothing dropped.
func TestWideOpenKeepsEveryCandidate(t *testing.T) {
	qb, ix1 := testWorkload(t, 6, 40)
	model := seed.Default()
	res, err := Run(qb, model, ix1, Config{MaxCandidates: ix1.Bank().Len()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("wide-open run dropped %d pairs", res.Dropped)
	}
	want := naiveCandidates(qb, model, ix1)
	var total int64
	for q := range want {
		if !reflect.DeepEqual(res.Survivors[q], want[q]) {
			t.Fatalf("query %d survivors %v, want %v", q, res.Survivors[q], want[q])
		}
		total += int64(len(want[q]))
	}
	if res.Kept != total {
		t.Fatalf("kept %d, want %d", res.Kept, total)
	}
	inUnion := make(map[uint32]bool)
	for _, sv := range want {
		for _, s := range sv {
			inUnion[s] = true
		}
	}
	if len(res.Union) != len(inUnion) {
		t.Fatalf("union has %d subjects, want %d", len(res.Union), len(inUnion))
	}
	for i := 1; i < len(res.Union); i++ {
		if res.Union[i-1] >= res.Union[i] {
			t.Fatalf("union not strictly ascending at %d: %v", i, res.Union)
		}
	}
}

// TestTopKCut checks the per-query cut: at most k survivors, the
// accounting sums to the unfiltered candidate count, and Keeps agrees
// with the slices.
func TestTopKCut(t *testing.T) {
	qb, ix1 := testWorkload(t, 6, 40)
	model := seed.Default()
	want := naiveCandidates(qb, model, ix1)
	var total int64
	for _, sv := range want {
		total += int64(len(sv))
	}
	for _, k := range []int{1, 3, 10} {
		res, err := Run(qb, model, ix1, Config{MaxCandidates: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Kept+res.Dropped != total {
			t.Fatalf("k=%d: kept %d + dropped %d != %d candidates", k, res.Kept, res.Dropped, total)
		}
		for q, sv := range res.Survivors {
			if len(sv) > k {
				t.Fatalf("k=%d: query %d kept %d subjects", k, q, len(sv))
			}
			for _, s := range sv {
				if !res.Keeps(q, s) {
					t.Fatalf("k=%d: Keeps(%d, %d) = false for a survivor", k, q, s)
				}
			}
			if res.Keeps(q, uint32(ix1.Bank().Len())+7) {
				t.Fatalf("k=%d: Keeps accepted an out-of-bank subject", k)
			}
		}
		if res.Keeps(-1, 0) || res.Keeps(qb.Len(), 0) {
			t.Fatal("Keeps accepted an out-of-range query")
		}
	}
}

// TestSelfHitRanksFirst is the sensitivity smoke test: a subject that
// is a copy of the query out-scores unrelated sequences, so k=1 keeps
// exactly it.
func TestSelfHitRanksFirst(t *testing.T) {
	rng := bank.NewRNG(11)
	q := bank.RandomProtein(rng, 100)
	qb := bank.New("q")
	qb.Add("q0", q)
	sb := bank.New("s")
	for i := 0; i < 20; i++ {
		sb.Add(fmt.Sprintf("s%d", i), bank.RandomProtein(rng, 100))
	}
	sb.Add("self", q) // sequence 20
	ix1, err := index.Build(sb, seed.Default(), 14)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(qb, seed.Default(), ix1, Config{MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors[0]) != 1 || res.Survivors[0][0] != 20 {
		t.Fatalf("k=1 kept %v, want the self hit [20]", res.Survivors[0])
	}
}

// TestRunDeterministic pins run-to-run stability of the whole result.
func TestRunDeterministic(t *testing.T) {
	qb, ix1 := testWorkload(t, 5, 30)
	a, err := Run(qb, seed.Default(), ix1, Config{MaxCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(qb, seed.Default(), ix1, Config{MaxCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs produced different results")
	}
}

func TestConfigValidation(t *testing.T) {
	qb, ix1 := testWorkload(t, 1, 2)
	if _, err := Run(qb, seed.Default(), ix1, Config{}); err == nil {
		t.Fatal("disabled config accepted")
	}
	if _, err := Run(qb, seed.Default(), ix1, Config{MaxCandidates: 1, BandWidth: 12}); err == nil {
		t.Fatal("non-power-of-two band width accepted")
	}
	if _, err := Run(qb, seed.Default(), ix1, Config{MaxCandidates: 1, TableBits: 31}); err == nil {
		t.Fatal("oversized table accepted")
	}
	if _, err := Run(nil, seed.Default(), ix1, Config{MaxCandidates: 1}); err == nil {
		t.Fatal("nil queries accepted")
	}
}
