// Sensitivity: run the family benchmark behind the paper's §4.4 —
// queries with known family labels searched against a genome of
// planted homologs and decoys — and report per-family recall for the
// seed pipeline (v2 search API) and the BLAST-style baseline.
//
//	go run ./examples/sensitivity
package main

import (
	"context"
	"fmt"
	"log"

	"seedblast"
)

func main() {
	fb, err := seedblast.GenerateFamilyBenchmark(seedblast.FamilyConfig{
		Families:         10,
		MembersPerFamily: 4,
		MemberLen:        180,
		Divergence:       0.55,
		DecoyGenes:       50,
		Seed:             31,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %d families × 4 members + %d decoys in a %d nt genome\n\n",
		fb.Queries.Len(), fb.NumDecoys, len(fb.Genome))

	// Seed pipeline, streamed: true hits are tallied as matches arrive.
	searcher, err := seedblast.NewSearcher(
		seedblast.WithMaxEValue(10), // relaxed: rankings keep weak hits
	)
	if err != nil {
		log.Fatal(err)
	}
	results := searcher.Search(context.Background(),
		seedblast.NewProteinTarget(fb.Queries), seedblast.NewGenomeTarget(fb.Genome, nil))
	pipeTP := make(map[int]map[int]bool) // query → set of member intervals found
	for m, err := range results.Matches() {
		if err != nil {
			log.Fatal(err)
		}
		q := m.Query.Seq
		fam := fb.QueryFamily[q]
		if fb.TrueHit(fam, m.Subject.NucStart, m.Subject.NucEnd-m.Subject.NucStart) {
			markMember(pipeTP, fb, q, m.Subject.NucStart, m.Subject.NucEnd)
		}
	}

	// Baseline.
	bcfg := seedblast.DefaultBaselineConfig()
	bcfg.MaxEValue = 10
	bms, err := seedblast.BaselineGenome(fb.Queries, fb.Genome, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	blastTP := make(map[int]map[int]bool)
	for _, m := range bms {
		fam := fb.QueryFamily[m.Query]
		if fb.TrueHit(fam, m.NucStart, m.NucEnd-m.NucStart) {
			markMember(blastTP, fb, m.Query, m.NucStart, m.NucEnd)
		}
	}

	fmt.Printf("%-10s %18s %18s\n", "family", "pipeline recall", "baseline recall")
	var pipeTotal, blastTotal, members int
	for q := 0; q < fb.Queries.Len(); q++ {
		fam := fb.QueryFamily[q]
		total := fb.FamilySize(fam)
		members += total
		p := len(pipeTP[q])
		bl := len(blastTP[q])
		pipeTotal += p
		blastTotal += bl
		fmt.Printf("%-10d %12d/%d %17d/%d\n", fam, p, total, bl, total)
	}
	fmt.Printf("\noverall: pipeline %d/%d, baseline %d/%d\n",
		pipeTotal, members, blastTotal, members)
	fmt.Println("(the paper's Table 6 finds the two approaches near-equal)")
}

// markMember records which planted members a query's match covers.
func markMember(tp map[int]map[int]bool, fb *seedblast.FamilyBenchmark, q, nucStart, nucEnd int) {
	fam := fb.QueryFamily[q]
	for mi, m := range fb.Members {
		if m.Family != fam {
			continue
		}
		lo := max(nucStart, m.Start)
		hi := min(nucEnd, m.Start+m.NucLen)
		if hi-lo >= m.NucLen/2 {
			if tp[q] == nil {
				tp[q] = make(map[int]bool)
			}
			tp[q][mi] = true
		}
	}
}
