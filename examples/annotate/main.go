// Annotate: the genome-annotation workflow the paper's introduction
// motivates — locate regions of a newly sequenced genome with
// significant similarity to a bank of known proteins, then report them
// as candidate genes with frames, coordinates and alignments. Runs on
// the v2 search API: the known-protein bank and the genome are both
// reusable targets.
//
//	go run ./examples/annotate
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"seedblast"
)

func main() {
	// The "known protein" bank: in a real run this is loaded with
	// seedblast.LoadProteinFASTA("nr-subset", "bank.fa").
	known := seedblast.GenerateProteins(seedblast.ProteinConfig{
		N:       60,
		MeanLen: 300,
		Seed:    11,
	})

	// The "newly sequenced genome": 0.5 Mnt with 12 diverged genes.
	genome, truth, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length:       500_000,
		Source:       known,
		PlantCount:   12,
		PlantSubRate: 0.3, // remote homologs: 70% identity
		Seed:         12,
	})
	if err != nil {
		log.Fatal(err)
	}

	searcher, err := seedblast.NewSearcher(
		seedblast.WithTraceback(true), // keep alignment operations for reporting
	)
	if err != nil {
		log.Fatal(err)
	}
	results := searcher.Search(context.Background(),
		seedblast.NewProteinTarget(known), seedblast.NewGenomeTarget(genome, nil))
	matches, err := results.Collect()
	if err != nil {
		log.Fatal(err)
	}

	// Group matches into non-overlapping candidate genes (best match
	// per region), sorted along the genome.
	sort.Slice(matches, func(i, j int) bool {
		return matches[i].Subject.NucStart < matches[j].Subject.NucStart
	})
	var annotations []seedblast.Match
	for _, m := range matches {
		if n := len(annotations); n > 0 && m.Subject.NucStart < annotations[n-1].Subject.NucEnd {
			if m.Score > annotations[n-1].Score {
				annotations[n-1] = m // better call for the same locus
			}
			continue
		}
		annotations = append(annotations, m)
	}

	fmt.Printf("annotation of a %d nt genome against %d known proteins\n",
		len(genome), known.Len())
	fmt.Printf("%d loci called (%d planted)\n\n", len(annotations), len(truth))
	fmt.Printf("%-8s %-12s %-6s %-22s %8s %12s\n",
		"locus", "protein", "frame", "genome interval", "score", "E-value")
	for i, m := range annotations {
		fmt.Printf("%-8d %-12s %-6s [%9d, %9d) %8d %12.2e\n",
			i+1, m.Query.ID, m.Subject.Frame, m.Subject.NucStart, m.Subject.NucEnd,
			m.Score, m.EValue)
	}

	// Recall against the planted truth.
	found := 0
	for _, g := range truth {
		for _, m := range annotations {
			lo := max(m.Subject.NucStart, g.Start)
			hi := min(m.Subject.NucEnd, g.Start+g.NucLen)
			if m.Query.Seq == g.ProteinIdx && hi-lo >= g.NucLen/2 {
				found++
				break
			}
		}
	}
	fmt.Printf("\nrecall: %d/%d planted genes recovered\n", found, len(truth))
}
