// Quickstart: compare a small protein bank against a synthetic genome
// and print the similarity regions the pipeline finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seedblast"
)

func main() {
	// A bank of 20 random proteins...
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{
		N:       20,
		MeanLen: 200,
		Seed:    1,
	})

	// ...and a 100 kb genome with 5 mutated copies of bank proteins
	// hidden in it (the ground truth a real annotation run would seek).
	genome, genes, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length:       100_000,
		Source:       proteins,
		PlantCount:   5,
		PlantSubRate: 0.2,
		Seed:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted %d genes in a %d nt genome\n", len(genes), len(genome))

	// Run the three-step pipeline (tblastn-style: the genome is
	// translated into its six reading frames internally).
	res, err := seedblast.CompareGenome(proteins, genome, seedblast.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scored %d seed pairs, %d survived ungapped filtering, %d alignments\n\n",
		res.Pairs, res.Hits, len(res.Matches))
	for _, m := range res.Matches {
		fmt.Printf("%-12s frame %-3s genome [%6d, %6d)  score %4d  E = %.2e\n",
			proteins.ID(m.Protein), m.Frame, m.NucStart, m.NucEnd, m.Score, m.EValue)
	}
	fmt.Printf("\ntiming: index %v, ungapped %v, gapped %v\n",
		res.Times.Index, res.Times.Ungapped, res.Times.Gapped)
}
