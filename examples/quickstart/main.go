// Quickstart: compare a small protein bank against a synthetic genome
// with the v2 search API and print similarity regions as the pipeline
// streams them out.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"seedblast"
)

func main() {
	// A bank of 20 random proteins...
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{
		N:       20,
		MeanLen: 200,
		Seed:    1,
	})

	// ...and a 100 kb genome with 5 mutated copies of bank proteins
	// hidden in it (the ground truth a real annotation run would seek).
	genome, genes, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length:       100_000,
		Source:       proteins,
		PlantCount:   5,
		PlantSubRate: 0.2,
		Seed:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted %d genes in a %d nt genome\n\n", len(genes), len(genome))

	// A Searcher is built once from options (the defaults here) and a
	// GenomeTarget owns the genome's six-frame translation plus its
	// reusable step-1 index — build either once, search many times.
	searcher, err := seedblast.NewSearcher()
	if err != nil {
		log.Fatal(err)
	}
	target := seedblast.NewGenomeTarget(genome, nil) // nil = standard genetic code

	// Search streams: matches arrive as each pipeline shard finishes
	// final ranking, already in global rank order. (Use Collect() for
	// the old materialized-slice behaviour.)
	results := searcher.Search(context.Background(), seedblast.NewProteinTarget(proteins), target)
	n := 0
	for m, err := range results.Matches() {
		if err != nil {
			log.Fatal(err)
		}
		n++
		fmt.Printf("%-12s frame %-3s genome [%6d, %6d)  score %4d  E = %.2e\n",
			m.Query.ID, m.Subject.Frame, m.Subject.NucStart, m.Subject.NucEnd,
			m.Score, m.EValue)
	}

	// Work counters and timings are available once the stream is drained.
	sum, err := results.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscored %d seed pairs, %d survived ungapped filtering, %d alignments\n",
		sum.Pairs, sum.Hits, n)
	fmt.Printf("timing: index %v, ungapped %v, gapped %v\n",
		sum.Times.Index, sum.Times.Ungapped, sum.Times.Gapped)
}
