// PE scaling: explore how the simulated RASC-100's step-2 time,
// utilization and speedup over the sequential software engine change
// with the PE array size — the design space behind the paper's
// Tables 2 and 4. Built on the v2 search API, the sweep shares one
// GenomeTarget: its six-frame index is built once and reused by every
// configuration (same seed model and N), so the runs measure the
// engines, not repeated indexing.
//
//	go run ./examples/pescaling
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"seedblast"
)

func main() {
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{
		N:       200,
		MeanLen: 300,
		Seed:    21,
	})
	genome, _, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length:       400_000,
		Source:       proteins,
		PlantCount:   8,
		PlantSubRate: 0.2,
		Seed:         22,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A coarse subset seed (10·10·1·10 = 1000 keys) keeps index buckets
	// large relative to the PE array at this reduced workload scale, as
	// the paper's 40000-key index does at NR scale — otherwise every
	// array size is under-filled and the sweep is flat.
	coarse, err := seedblast.SubsetSeed("murphy-coarse",
		"murphy10", "murphy10", "any", "murphy10")
	if err != nil {
		log.Fatal(err)
	}

	// One target for the whole sweep: the frame-bank index is built by
	// the first search and reused by all later ones.
	queries := seedblast.NewProteinTarget(proteins)
	target := seedblast.NewGenomeTarget(genome, nil)
	ctx := context.Background()

	run := func(opts ...seedblast.Option) *seedblast.Summary {
		opts = append([]seedblast.Option{seedblast.WithSeed(coarse)}, opts...)
		searcher, err := seedblast.NewSearcher(opts...)
		if err != nil {
			log.Fatal(err)
		}
		results := searcher.Search(ctx, queries, target)
		if _, err := results.Collect(); err != nil {
			log.Fatal(err)
		}
		sum, err := results.Summary()
		if err != nil {
			log.Fatal(err)
		}
		return sum
	}

	// Reference: the sequential software critical section.
	ref := run(seedblast.WithWorkers(1))
	seqStep2 := ref.Times.Ungapped
	fmt.Printf("workload: %d proteins (%d aa) vs %d nt genome\n",
		proteins.Len(), proteins.TotalResidues(), len(genome))
	fmt.Printf("sequential step 2: %v (%d pairs)\n\n", seqStep2, ref.Pairs)

	fmt.Printf("%6s %14s %14s %12s %10s\n",
		"PEs", "simulated t", "compute t", "utilization", "speedup")
	for _, pes := range []int{16, 32, 64, 128, 192, 384} {
		sum := run(
			seedblast.WithEngine(seedblast.EngineRASC),
			seedblast.WithRASC(seedblast.RASCOptions{NumPEs: pes}),
		)
		dev := sum.Device
		simT := time.Duration(dev.Seconds * float64(time.Second))
		fmt.Printf("%6d %14v %14v %11.1f%% %10.1f\n",
			pes, simT.Round(time.Microsecond),
			time.Duration(dev.ComputeSeconds*float64(time.Second)).Round(time.Microsecond),
			100*dev.Utilization,
			seqStep2.Seconds()/dev.Seconds)
	}
	fmt.Println("\nNote: speedup saturates when index buckets no longer fill the")
	fmt.Println("array — the effect behind the paper's small-bank rows in Table 2.")
}
