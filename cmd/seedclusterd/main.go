// Command seedclusterd is the scatter-gather coordinator daemon: it
// speaks the same submit/poll/fetch/cancel HTTP+JSON job API as
// seedservd, but behind every job it partitions the subject bank into
// volumes, scatters one comparison per volume across a set of
// seedservd workers (each job carrying the full bank's search-space
// geometry, so per-volume E-values match the unpartitioned run), and
// gathers the merged, globally re-ranked alignments — streamed off
// each worker's NDJSON fetch path and k-way merged, so no per-volume
// input list is buffered whole on the coordinator (the merged report
// itself is retained for the job API). Failed workers are retried
// around; /cluster/metrics exposes per-worker latency, retry counts
// and volume skew.
//
//	# two workers, then the coordinator over them:
//	seedservd -addr 127.0.0.1:8845 &
//	seedservd -addr 127.0.0.1:8846 &
//	seedclusterd -addr :8844 \
//	  -workers http://127.0.0.1:8845,http://127.0.0.1:8846 \
//	  -strategy size -volumes 4
//
//	# with prebuilt volume seed indexes (cmd/seeddb) the workers skip
//	# step 1 entirely: build volumes under the SAME -strategy/-volumes
//	# the coordinator runs, give worker K the volumes K mod #workers
//	# (the coordinator's round-robin scatter preference), and every
//	# volume job fingerprints onto a pre-warmed cache entry:
//	seeddb build -proteins nr.fasta -out nr.seeddb -volumes 4 -strategy size
//	seedservd -addr 127.0.0.1:8845 -db nr.vol0.seeddb,nr.vol2.seeddb &
//	seedservd -addr 127.0.0.1:8846 -db nr.vol1.seeddb,nr.vol3.seeddb &
//
//	# exactly the seedservd client flow:
//	curl -s localhost:8844/v1/jobs -d '{"query":[{"id":"q0","seq":"MKV..."}],
//	  "subject":[{"id":"s0","seq":"MKI..."}],"options":{"maxEValue":10}}'
//	curl -s localhost:8844/v1/jobs/cjob-1
//	curl -s localhost:8844/v1/jobs/cjob-1/alignments
//	curl -sN localhost:8844/v1/jobs/cjob-1/alignments?stream=1
//	curl -s localhost:8844/v1/jobs/cjob-1/trace
//	curl -s localhost:8844/metrics
//	curl -s localhost:8844/cluster/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"seedblast/internal/cluster"
	"seedblast/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8844", "listen address")
		workers     = flag.String("workers", "", "comma-separated seedservd base URLs (required)")
		strategy    = flag.String("strategy", "size", "partitioning strategy: size (balanced residues) or seqcount (contiguous)")
		volumes     = flag.Int("volumes", 0, "volumes per request (0 = one per worker)")
		maxAttempts = flag.Int("max-attempts", 0, "distinct workers tried per volume before the request fails (0 = all)")
		fanOut      = flag.Int("fan-out", 0, "volume jobs in flight at once per request (0 = one per worker)")
		poll        = flag.Duration("poll-interval", 25*time.Millisecond, "worker job poll cadence")
		maxJobs     = flag.Int("max-jobs", 256, "finished jobs kept pollable before the oldest are dropped")
		jobTTL      = flag.Duration("job-ttl", 15*time.Minute, "finished jobs expire after this age (negative disables)")
		maxQueued   = flag.Int("max-queued", 1024, "unfinished jobs accepted before submissions get 503")
		waitWorkers = flag.Duration("wait-workers", 0, "wait up to this long for all workers to report healthy before serving")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (own listener, kept off the public API; empty disables)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	logger := newLogger(*logJSON)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	urls := splitWorkers(*workers)
	if len(urls) == 0 {
		fatal("at least one -workers URL is required")
	}
	part, err := cluster.PartitionerByName(*strategy)
	if err != nil {
		fatal("bad -strategy", "err", err)
	}
	coord, err := cluster.New(cluster.Config{
		Workers:      urls,
		Partitioner:  part,
		Volumes:      *volumes,
		MaxAttempts:  *maxAttempts,
		FanOut:       *fanOut,
		PollInterval: *poll,
	})
	if err != nil {
		fatal("coordinator setup failed", "err", err)
	}
	if *waitWorkers > 0 {
		wctx, wcancel := context.WithTimeout(context.Background(), *waitWorkers)
		err := coord.WaitHealthy(wctx)
		wcancel()
		if err != nil {
			fatal("workers not healthy", "err", err)
		}
	}
	if *pprofAddr != "" {
		bound, err := telemetry.StartPprof(*pprofAddr, logger)
		if err != nil {
			fatal("pprof listener failed", "addr", *pprofAddr, "err", err)
		}
		logger.Info("pprof listening", "addr", bound)
	}

	server := cluster.NewServer(coord, cluster.ServerConfig{MaxJobsRetained: *maxJobs, JobTTL: *jobTTL, MaxQueued: *maxQueued})
	defer server.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewHandler(server),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	logger.Info("listening", "addr", *addr,
		"workers", len(urls), "strategy", part.Name(), "volumes", coord.Config().Volumes)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve failed", "err", err)
	}
}

// newLogger builds the daemon's structured logger: text for humans at
// a terminal, JSON when a collector ingests the stream.
func newLogger(json bool) *slog.Logger {
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("daemon", "seedclusterd")
}

func splitWorkers(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}
