// Command seeddb manages persistent on-disk seed indexes: it runs
// step 1 of the paper's algorithm (bank indexing, §2.1) once and
// writes the product — index plus bank — as a versioned, checksummed,
// fingerprint-stamped seeddb file that core.OpenTarget, seedservd -db
// and cluster volume workers mmap instead of rebuilding.
//
//	# index a bank once; serve it forever:
//	seeddb build -proteins nr.fasta -out nr.seeddb
//	seedservd -db nr.seeddb
//
//	# pre-partitioned cluster volumes (same strategy the coordinator
//	# uses, so per-volume fingerprints match its scatter exactly;
//	# distribute vol K to worker K mod #workers — the coordinator
//	# prefers that round-robin assignment):
//	seeddb build -proteins nr.fasta -out nr.seeddb -volumes 4 -strategy size
//	seeddb inspect nr.vol0.seeddb
//	seeddb verify nr.vol*.seeddb
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"seedblast/internal/bank"
	"seedblast/internal/cluster"
	"seedblast/internal/index"
	"seedblast/internal/seed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seeddb: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  seeddb build   -proteins bank.fasta [-out bank.seeddb] [-n 14] [-volumes K -strategy size]
  seeddb build   -synthetic 1000 [-out bank.seeddb] ...
  seeddb inspect file.seeddb...
  seeddb verify  file.seeddb...`)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		proteinsPath = fs.String("proteins", "", "protein bank FASTA file")
		synthetic    = fs.Int("synthetic", 0, "generate a synthetic bank of this many proteins instead of -proteins")
		rngSeed      = fs.Int64("seed", 1, "synthetic bank RNG seed")
		out          = fs.String("out", "bank.seeddb", "output path (with -volumes K, volume V goes to <out base>.volV.seeddb)")
		n            = fs.Int("n", 14, "neighbourhood extension N (windows are W+2N)")
		workers      = fs.Int("workers", 0, "index build parallelism (0 = GOMAXPROCS)")
		volumes      = fs.Int("volumes", 0, "also cut the bank into this many cluster volumes and write one seeddb per volume")
		strategy     = fs.String("strategy", "size", "volume partitioning strategy: size (balanced residues) or seqcount (contiguous) — must match the coordinator's")
	)
	fs.Parse(args)

	var b *bank.Bank
	switch {
	case *proteinsPath != "":
		var err error
		if b, err = bank.LoadFASTA("bank", *proteinsPath); err != nil {
			log.Fatal(err)
		}
	case *synthetic > 0:
		b = bank.GenerateProteins(bank.ProteinConfig{N: *synthetic, Seed: *rngSeed})
	default:
		log.Fatal("build needs -proteins or -synthetic")
	}
	model := seed.Default()

	if *volumes <= 0 {
		writeDB(b, model, *n, *workers, *out)
		return
	}
	part, err := cluster.PartitionerByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	lens := make([]int, b.Len())
	for i := range lens {
		lens[i] = len(b.Seq(i))
	}
	vols := part.Partition(lens, *volumes)
	base := strings.TrimSuffix(*out, ".seeddb")
	for vi, vol := range vols {
		vb := bank.New(fmt.Sprintf("%s-vol%d", b.Name(), vi))
		for _, gi := range vol.Seqs {
			vb.Add(b.ID(gi), b.Seq(gi))
		}
		writeDB(vb, model, *n, *workers, fmt.Sprintf("%s.vol%d.seeddb", base, vi))
	}
	log.Printf("wrote %d volumes (strategy %s); distribute vol K to worker K mod #workers to match the coordinator's scatter preference", len(vols), part.Name())
}

func writeDB(b *bank.Bank, model *seed.SubsetModel, n, workers int, out string) {
	ix, err := index.BuildParallel(b, model, n, workers)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.WriteFile(out); err != nil {
		log.Fatal(err)
	}
	info, err := index.Inspect(out)
	if err != nil {
		log.Fatalf("re-reading %s: %v", out, err)
	}
	log.Printf("%s: %d seqs / %d aa, %d entries, fingerprint %.16s…, %d bytes",
		out, info.Sequences, info.Residues, info.Entries, info.Fingerprint, info.FileSize)
}

func inspect(args []string) {
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	for _, path := range args {
		info, err := index.Inspect(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  version      %d\n", info.Version)
		fmt.Printf("  fingerprint  %s\n", info.Fingerprint)
		fmt.Printf("  seed model   %s (W=%d, %d keys), N=%d, windows %d aa\n",
			info.ModelName, info.Width, info.KeySpace, info.N, info.SubLen)
		fmt.Printf("  bank         %s: %d sequences, %d residues\n",
			info.BankName, info.Sequences, info.Residues)
		fmt.Printf("  entries      %d\n", info.Entries)
		fmt.Printf("  file size    %d bytes\n", info.FileSize)
	}
}

func verify(args []string) {
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	failed := false
	for _, path := range args {
		if err := index.Verify(path); err != nil {
			log.Printf("FAIL %s: %v", path, err)
			failed = true
			continue
		}
		log.Printf("ok   %s", path)
	}
	if failed {
		os.Exit(1)
	}
}
