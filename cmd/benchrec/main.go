// Command benchrec measures the step-2 kernel and the streaming
// pipeline on the paper's asymmetric workload shape and writes a
// machine-readable benchmark record (BENCH_NNNN.json). The checked-in
// record pins the measured scalar-vs-blocked speedup next to the
// EXPERIMENTS.md narrative so regressions are diffable.
//
// Example:
//
//	benchrec -out BENCH_0006.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"seedblast/internal/bank"
	"seedblast/internal/benchfmt"
	"seedblast/internal/core"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/seed"
	"seedblast/internal/ungapped"
)

// KernelSample is one (N, kernel) cell of the step-2 measurement.
type KernelSample struct {
	N           int     `json:"n"`      // neighbourhood extension; windows are W+2N
	Kernel      string  `json:"kernel"` // "scalar" or "blocked"
	Pairs       int64   `json:"pairs"`  // pairs scored per run
	NsPerPair   float64 `json:"nsPerPair"`
	PairsPerSec float64 `json:"pairsPerSec"`
}

// Speedup is the blocked/scalar single-core throughput ratio at one N.
type Speedup struct {
	N     int     `json:"n"`
	Ratio float64 `json:"ratio"`
}

// StreamSample is the end-to-end streaming-engine measurement: the
// full three-step pipeline with sharding, auto kernel, one host.
type StreamSample struct {
	ShardSize      int     `json:"shardSize"`
	Shards         int     `json:"shards"`
	Pairs          int64   `json:"pairs"`
	Residues       int     `json:"residues"` // subject residues processed
	WallMS         float64 `json:"wallMS"`
	PairsPerSec    float64 `json:"pairsPerSec"`
	ResiduesPerSec float64 `json:"residuesPerSec"`
	Kernel         string  `json:"kernel"` // kernel the CPU shards resolved to
}

// PrefilterSample is one maxCandidates cell of the end-to-end
// prefilter sweep: the full streaming pipeline over a redundant
// homolog-rich bank with the top-K candidate cut at k (0 = off).
type PrefilterSample struct {
	MaxCandidates int     `json:"maxCandidates"`
	WallMS        float64 `json:"wallMS"`
	Matches       int     `json:"matches"`
	Kept          int64   `json:"kept"`
	Dropped       int64   `json:"dropped"`
	SpeedupVsOff  float64 `json:"speedupVsOff"`
}

// Record is the file layout of a benchrec BENCH_NNNN.json
// (benchfmt.SchemaBench; the schema is documented in EXPERIMENTS.md).
type Record struct {
	Schema     string              `json:"schema"`
	ID         string              `json:"id"`
	Provenance benchfmt.Provenance `json:"provenance"`
	Workload   string              `json:"workload"`
	Kernels    []KernelSample      `json:"kernels"`
	Speedups   []Speedup           `json:"speedups"`
	Stream     StreamSample        `json:"stream"`
	// Prefilter is present when the -prefilter sweep ran; the workload
	// is described in PrefilterWorkload.
	Prefilter         []PrefilterSample `json:"prefilter,omitempty"`
	PrefilterWorkload string            `json:"prefilterWorkload,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrec: ")

	// testing.Init registers the test.* flags testing.Benchmark reads
	// (test.benchtime); it must run before this binary's flag.Parse.
	testing.Init()
	var (
		out       = flag.String("out", "BENCH_0006.json", "output record path")
		id        = flag.String("id", "BENCH_0006", "record identifier")
		n0        = flag.Int("queries", 8, "query sequences")
		l0        = flag.Int("query-len", 200, "query length")
		n1        = flag.Int("subjects", 2000, "subject sequences")
		l1        = flag.Int("subject-len", 600, "subject length")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measuring time per cell")
		prefilter = flag.Bool("prefilter", false, "sweep the candidate prefilter (k=0,50,100,500) on a 5000-subject homolog bank")
	)
	flag.Parse()

	rec := Record{
		Schema:     benchfmt.SchemaBench,
		ID:         *id,
		Provenance: benchfmt.Collect(),
		Workload: fmt.Sprintf("%d×%daa queries vs %d×%daa subjects, W=4 subset seed, BLOSUM62, T=38",
			*n0, *l0, *n1, *l1),
	}

	for _, n := range []int{4, 8, 14} {
		ix0, ix1, err := buildIndexes(*n0, *l0, *n1, *l1, n)
		if err != nil {
			log.Fatal(err)
		}
		pairs := ungapped.PairCount(ix0, ix1)
		byKernel := map[ungapped.Kernel]float64{}
		for _, kernel := range []ungapped.Kernel{ungapped.KernelScalar, ungapped.KernelBlocked} {
			ns := measureKernel(ix0, ix1, kernel, pairs, *benchtime)
			byKernel[kernel] = ns
			rec.Kernels = append(rec.Kernels, KernelSample{
				N:           n,
				Kernel:      kernel.String(),
				Pairs:       pairs,
				NsPerPair:   round3(ns),
				PairsPerSec: round3(1e9 / ns),
			})
			log.Printf("N=%d %s: %.3f ns/pair (%.0f pairs/s)", n, kernel, ns, 1e9/ns)
		}
		ratio := byKernel[ungapped.KernelScalar] / byKernel[ungapped.KernelBlocked]
		rec.Speedups = append(rec.Speedups, Speedup{N: n, Ratio: round3(ratio)})
		log.Printf("N=%d: blocked %.2fx scalar", n, ratio)
	}

	stream, err := measureStream(*n0, *l0, *n1, *l1)
	if err != nil {
		log.Fatal(err)
	}
	rec.Stream = *stream
	log.Printf("stream: %d shards of %d, %.1f ms wall, %.0f pairs/s, %.0f residues/s (kernel %s)",
		stream.Shards, stream.ShardSize, stream.WallMS, stream.PairsPerSec, stream.ResiduesPerSec, stream.Kernel)

	if *prefilter {
		samples, desc, err := measurePrefilter()
		if err != nil {
			log.Fatal(err)
		}
		rec.Prefilter = samples
		rec.PrefilterWorkload = desc
		for _, s := range samples {
			log.Printf("prefilter k=%d: %.1f ms wall, %d matches, %.2fx vs off",
				s.MaxCandidates, s.WallMS, s.Matches, s.SpeedupVsOff)
		}
	}

	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// buildIndexes reproduces BenchmarkStep2Kernel's workload: a small
// query bank against a much larger subject bank, giving the dense IL1
// lists step 2 spends its time in.
func buildIndexes(n0, l0, n1, l1, n int) (*index.Index, *index.Index, error) {
	rng := bank.NewRNG(42)
	b0 := bank.New("q")
	for i := 0; i < n0; i++ {
		b0.Add(fmt.Sprintf("q%d", i), bank.RandomProtein(rng, l0))
	}
	b1 := bank.New("s")
	for i := 0; i < n1; i++ {
		b1.Add(fmt.Sprintf("s%d", i), bank.RandomProtein(rng, l1))
	}
	model := seed.Default()
	ix0, err := index.Build(b0, model, n)
	if err != nil {
		return nil, nil, err
	}
	ix1, err := index.Build(b1, model, n)
	if err != nil {
		return nil, nil, err
	}
	return ix0, ix1, nil
}

// measureKernel times single-core ungapped.Run with the given kernel
// under the standard benchmark harness and returns ns per scored pair.
func measureKernel(ix0, ix1 *index.Index, kernel ungapped.Kernel, pairs int64, benchtime time.Duration) float64 {
	cfg := ungapped.Config{Matrix: matrix.BLOSUM62, Threshold: 38, Workers: 1, Kernel: kernel}
	// testing.Benchmark honours -test.benchtime; flags are not parsed
	// in this binary, so set it explicitly before the run.
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		log.Fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ungapped.Run(ix0, ix1, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Kernel != kernel {
				b.Fatalf("kernel %v resolved to %v on this workload", kernel, res.Kernel)
			}
		}
	})
	return float64(r.T.Nanoseconds()) / float64(pairs*int64(r.N))
}

// measureStream runs the full streaming pipeline (steps 1–3, sharded,
// auto kernel) once and reports its end-to-end throughput.
func measureStream(n0, l0, n1, l1 int) (*StreamSample, error) {
	rng := bank.NewRNG(42)
	b0 := bank.New("q")
	for i := 0; i < n0; i++ {
		b0.Add(fmt.Sprintf("q%d", i), bank.RandomProtein(rng, l0))
	}
	b1 := bank.New("s")
	residues := 0
	for i := 0; i < n1; i++ {
		p := bank.RandomProtein(rng, l1)
		residues += len(p)
		b1.Add(fmt.Sprintf("s%d", i), p)
	}
	opt := core.DefaultOptions()
	opt.Pipeline.ShardSize = 2 // shard the small query side, stream the pipeline
	opt.Pipeline.InFlight = 2
	res, err := core.Compare(b0, b1, opt)
	if err != nil {
		return nil, err
	}
	wall := res.Pipeline.Wall
	kernel := "scalar"
	if res.Pipeline.ShardsByKernel["blocked"] > 0 {
		kernel = "blocked"
	}
	return &StreamSample{
		ShardSize:      2,
		Shards:         res.Pipeline.Shards,
		Pairs:          res.Pairs,
		Residues:       residues,
		WallMS:         round3(float64(wall.Nanoseconds()) / 1e6),
		PairsPerSec:    round3(float64(res.Pairs) / wall.Seconds()),
		ResiduesPerSec: round3(float64(residues) / wall.Seconds()),
		Kernel:         kernel,
	}, nil
}

// measurePrefilter sweeps maxCandidates over a redundant bank — every
// subject a mutated relative of some query at divergence 10–50% — the
// workload class the prefilter targets (NR-style databases where most
// pairs reach extension). Each cell takes the best of three runs.
func measurePrefilter() ([]PrefilterSample, string, error) {
	const (
		nQueries  = 16
		nSubjects = 5000
	)
	queries := bank.GenerateProteins(bank.ProteinConfig{
		N: nQueries, MeanLen: 120, LenJitter: 30, Seed: 71,
	})
	rng := bank.NewRNG(73)
	rates := []float64{0.10, 0.20, 0.30, 0.40, 0.50}
	subjects := bank.New("subjects")
	for i := 0; i < nSubjects; i++ {
		q := queries.Seq(i % queries.Len())
		rate := rates[(i/queries.Len())%len(rates)]
		subjects.Add(fmt.Sprintf("h%d", i), bank.MutateProtein(rng, q, rate))
	}
	desc := fmt.Sprintf("%d×~120aa queries vs %d mutated homologs (10–50%% divergence), single shard",
		nQueries, nSubjects)

	// Pre-build the subject index once so cells measure the
	// per-request stages, as a warm server would.
	opt := core.DefaultOptions()
	ix1, err := index.BuildParallel(subjects, opt.Seed, opt.N, 0)
	if err != nil {
		return nil, "", err
	}

	var out []PrefilterSample
	var offWall float64
	for _, k := range []int{0, 50, 100, 500} {
		opt := core.DefaultOptions()
		opt.MaxCandidates = k
		opt.SubjectIndex = ix1
		var best *core.Result
		var bestWall time.Duration
		for rep := 0; rep < 3; rep++ {
			res, err := core.Compare(queries, subjects, opt)
			if err != nil {
				return nil, "", err
			}
			if best == nil || res.Pipeline.Wall < bestWall {
				best, bestWall = res, res.Pipeline.Wall
			}
		}
		wallMS := float64(bestWall.Nanoseconds()) / 1e6
		if k == 0 {
			offWall = wallMS
		}
		out = append(out, PrefilterSample{
			MaxCandidates: k,
			WallMS:        round3(wallMS),
			Matches:       len(best.Alignments),
			Kept:          best.Pipeline.PrefilterKept,
			Dropped:       best.Pipeline.PrefilterDropped,
			SpeedupVsOff:  round3(offWall / wallMS),
		})
	}
	return out, desc, nil
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
