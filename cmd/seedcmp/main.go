// Command seedcmp compares a protein bank against a genome with the
// seed-based pipeline, printing matches in genome coordinates and the
// per-step timing profile. It is the reproduction's equivalent of
// running tblastn: either real FASTA inputs or a synthetic workload.
//
// Examples:
//
//	seedcmp -proteins bank.fa -genome chr1.fa
//	seedcmp -synthetic 100 -genome-len 1000000 -plant 10 -engine rasc -pes 192
//	seedcmp -synthetic 20 -report   # full BLAST-style report with alignments
//	seedcmp -synthetic 100 -shard-size 16 -inflight 2 -engine multi
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"seedblast"
	"seedblast/internal/matrix"
	"seedblast/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seedcmp: ")

	var (
		proteinsPath = flag.String("proteins", "", "protein bank FASTA file")
		genomePath   = flag.String("genome", "", "genome FASTA file")
		synthetic    = flag.Int("synthetic", 0, "generate a synthetic bank of this many proteins instead of -proteins")
		genomeLen    = flag.Int("genome-len", 500_000, "synthetic genome length in nucleotides (with -synthetic)")
		plant        = flag.Int("plant", 10, "genes planted in the synthetic genome")
		seed         = flag.Int64("seed", 1, "synthetic workload RNG seed")
		engine       = flag.String("engine", "cpu", "step-2 engine: cpu, rasc, or multi (shards fanned across both)")
		shardSize    = flag.Int("shard-size", 0, "stream the bank through the pipeline in shards of this many proteins (0 = one shard)")
		inflight     = flag.Int("inflight", 2, "shards in flight between pipeline stages")
		streamW      = flag.Int("stream-workers", 0, "concurrent shards per pipeline stage (0 = auto: 1, or one per backend with -engine multi)")
		pes          = flag.Int("pes", 192, "PE array size (rasc engine)")
		fpgas        = flag.Int("fpgas", 1, "FPGAs used (rasc engine, 1 or 2)")
		offloadGap   = flag.Bool("offload-gapped", false, "simulate the future-work gap operator on the second FPGA")
		threshold    = flag.Int("threshold", 38, "ungapped score threshold")
		evalue       = flag.Float64("evalue", 1e-3, "maximum E-value")
		top          = flag.Int("top", 20, "matches to print (0 = all)")
		full         = flag.Bool("report", false, "print a full BLAST-style report with alignment blocks")
		codeName     = flag.String("code", "standard", "genetic code: standard/1, bacterial/11, mito/2")
	)
	flag.Parse()

	bank, genome, err := loadInputs(*proteinsPath, *genomePath, *synthetic, *genomeLen, *plant, *seed)
	if err != nil {
		log.Fatal(err)
	}

	opt := seedblast.DefaultOptions()
	opt.UngappedThreshold = *threshold
	opt.Gapped.MaxEValue = *evalue
	opt.Gapped.Traceback = *full
	code, err := seedblast.GeneticCodeByName(*codeName)
	if err != nil {
		log.Fatal(err)
	}
	opt.GeneticCode = code
	switch *engine {
	case "cpu":
		opt.Engine = seedblast.EngineCPU
	case "rasc":
		opt.Engine = seedblast.EngineRASC
		opt.RASC.NumPEs = *pes
		opt.RASC.NumFPGAs = *fpgas
		opt.RASC.OffloadGapped = *offloadGap
	case "multi":
		if *offloadGap {
			log.Fatal("-offload-gapped requires -engine rasc (step 3 stays on the host under multi dispatch)")
		}
		opt.Engine = seedblast.EngineMulti
		opt.RASC.NumPEs = *pes
		opt.RASC.NumFPGAs = *fpgas
	default:
		log.Fatalf("unknown engine %q (cpu, rasc, multi)", *engine)
	}
	workers := *streamW
	if workers <= 0 {
		workers = 1
		if opt.Engine == seedblast.EngineMulti {
			workers = 2 // one in-flight shard per backend, so cpu and rasc run concurrently
		}
	}
	opt.Pipeline = seedblast.PipelineConfig{
		ShardSize:    *shardSize,
		InFlight:     *inflight,
		Step2Workers: workers,
		Step3Workers: workers,
	}

	res, err := seedblast.CompareGenome(bank, genome, opt)
	if err != nil {
		log.Fatal(err)
	}

	if *full {
		if err := report.WriteGenomeReport(os.Stdout, bank, genome, res, matrix.BLOSUM62); err != nil {
			log.Fatal(err)
		}
		printTiming(res)
		return
	}

	fmt.Printf("bank: %d proteins, %d aa; genome: %d nt\n",
		bank.Len(), bank.TotalResidues(), len(genome))
	fmt.Printf("pairs scored: %d; hits: %d; matches: %d\n",
		res.Pairs, res.Hits, len(res.Matches))
	printTiming(res)

	n := len(res.Matches)
	if *top > 0 && *top < n {
		n = *top
	}
	fmt.Printf("\n%-14s %-8s %8s %10s %12s  %s\n",
		"protein", "frame", "score", "bits", "E-value", "genome interval")
	for _, m := range res.Matches[:n] {
		fmt.Printf("%-14s %-8s %8d %10.1f %12.2e  [%d, %d)\n",
			bank.ID(m.Protein), m.Frame, m.Score, m.BitScore, m.EValue,
			m.NucStart, m.NucEnd)
	}
	if n < len(res.Matches) {
		fmt.Printf("... and %d more\n", len(res.Matches)-n)
	}
}

func printTiming(res *seedblast.GenomeResult) {
	fr := res.Times.Fractions()
	fmt.Printf("timing: step1 %v, step2 %v, step3 %v (%.1f%% / %.1f%% / %.1f%%)\n",
		res.Times.Index, res.Times.Ungapped, res.Times.Gapped,
		100*fr[0], 100*fr[1], 100*fr[2])
	if res.Device != nil {
		fmt.Printf("device: utilization %.1f%%, %.4fs simulated step 2 (compute %.4fs, DMA %.4fs)\n",
			100*res.Device.Utilization,
			res.Device.Seconds, res.Device.ComputeSeconds, res.Device.DMASeconds)
	}
	if res.GapDevice != nil {
		fmt.Printf("gap operator: %d tasks, %.4fs simulated step 3\n",
			res.GapDevice.Tasks, res.GapDevice.Seconds)
	}
	if pm := res.Pipeline; pm.Shards > 1 {
		fmt.Printf("pipeline: %d shards, wall %v (busy: step1 %v, step2 %v, step3 %v)\n",
			pm.Shards, pm.Wall, pm.Index.Busy, pm.Step2.Busy, pm.Step3.Busy)
		names := make([]string, 0, len(pm.ShardsByBackend))
		for name := range pm.ShardsByBackend {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  backend %s: %d shards\n", name, pm.ShardsByBackend[name])
		}
	}
}

func loadInputs(proteinsPath, genomePath string, synthetic, genomeLen, plant int, seed int64) (*seedblast.Bank, []byte, error) {
	var bank *seedblast.Bank
	var genome []byte
	var err error
	switch {
	case proteinsPath != "":
		bank, err = seedblast.LoadProteinFASTA("bank", proteinsPath)
		if err != nil {
			return nil, nil, err
		}
	case synthetic > 0:
		bank = seedblast.GenerateProteins(seedblast.ProteinConfig{N: synthetic, Seed: seed})
	default:
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case genomePath != "":
		genome, err = seedblast.LoadGenomeFASTA(genomePath)
		if err != nil {
			return nil, nil, err
		}
	default:
		genome, _, err = seedblast.GenerateGenome(seedblast.GenomeConfig{
			Length:       genomeLen,
			Source:       bank,
			PlantCount:   plant,
			PlantSubRate: 0.2,
			Seed:         seed + 1,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return bank, genome, nil
}
