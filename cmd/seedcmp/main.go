// Command seedcmp compares a protein bank against a genome with the
// seed-based pipeline, printing matches in genome coordinates and the
// per-step timing profile. It is the reproduction's equivalent of
// running tblastn: either real FASTA inputs or a synthetic workload.
// It drives the v2 search API: a Searcher built once from options, a
// GenomeTarget owning the six-frame translation and its index, and a
// streaming result — with -format json|tsv matches are written as they
// leave the pipeline, before the run has finished.
//
// Examples:
//
//	seedcmp -proteins bank.fa -genome chr1.fa
//	seedcmp -synthetic 100 -genome-len 1000000 -plant 10 -engine rasc -pes 192
//	seedcmp -synthetic 20 -report   # full BLAST-style report with alignments
//	seedcmp -synthetic 100 -shard-size 16 -inflight 2 -engine multi
//	seedcmp -synthetic 100 -format json | jq .eValue   # streaming NDJSON
//	seedcmp -synthetic 100 -format tsv  | cut -f1,5    # streaming TSV
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"seedblast"
	"seedblast/internal/matrix"
	"seedblast/internal/report"
	"seedblast/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seedcmp: ")

	var (
		proteinsPath = flag.String("proteins", "", "protein bank FASTA file")
		genomePath   = flag.String("genome", "", "genome FASTA file")
		synthetic    = flag.Int("synthetic", 0, "generate a synthetic bank of this many proteins instead of -proteins")
		genomeLen    = flag.Int("genome-len", 500_000, "synthetic genome length in nucleotides (with -synthetic)")
		plant        = flag.Int("plant", 10, "genes planted in the synthetic genome")
		seed         = flag.Int64("seed", 1, "synthetic workload RNG seed")
		engine       = flag.String("engine", "cpu", "step-2 engine: cpu, rasc, or multi (shards fanned across both)")
		kernelName   = flag.String("kernel", "auto", "CPU step-2 inner loop: auto, scalar, or blocked (bit-identical results)")
		shardSize    = flag.Int("shard-size", 0, "stream the bank through the pipeline in shards of this many proteins (0 = one shard)")
		inflight     = flag.Int("inflight", 2, "shards in flight between pipeline stages")
		streamW      = flag.Int("stream-workers", 0, "concurrent shards per pipeline stage (0 = auto: 1, or one per backend with -engine multi)")
		pes          = flag.Int("pes", 192, "PE array size (rasc engine)")
		fpgas        = flag.Int("fpgas", 1, "FPGAs used (rasc engine, 1 or 2)")
		offloadGap   = flag.Bool("offload-gapped", false, "simulate the future-work gap operator on the second FPGA")
		maxCand      = flag.Int("max-candidates", 0, "prefilter: extend only the top K subjects per query by diagonal seed score (0 = off, exhaustive; E-values unchanged)")
		threshold    = flag.Int("threshold", 38, "ungapped score threshold")
		evalue       = flag.Float64("evalue", 1e-3, "maximum E-value")
		top          = flag.Int("top", 20, "matches to print in the human report (0 = all; machine formats always stream all)")
		full         = flag.Bool("report", false, "print a full BLAST-style report with alignment blocks")
		format       = flag.String("format", "", "machine-readable match output: json (NDJSON, the service's alignment encoding) or tsv; matches stream to stdout, the summary goes to stderr")
		codeName     = flag.String("code", "standard", "genetic code: standard/1, bacterial/11, mito/2")
	)
	flag.Parse()

	if *format != "" && *format != "json" && *format != "tsv" {
		log.Fatalf("unknown format %q (json, tsv)", *format)
	}
	if *format != "" && *full {
		log.Fatal("-format and -report are mutually exclusive")
	}

	bank, genome, err := loadInputs(*proteinsPath, *genomePath, *synthetic, *genomeLen, *plant, *seed)
	if err != nil {
		log.Fatal(err)
	}
	code, err := seedblast.GeneticCodeByName(*codeName)
	if err != nil {
		log.Fatal(err)
	}

	workers := *streamW
	if workers <= 0 {
		workers = 1
		if *engine == "multi" {
			workers = 2 // one in-flight shard per backend, so cpu and rasc run concurrently
		}
	}
	kernel, err := seedblast.ParseKernel(*kernelName)
	if err != nil {
		log.Fatal(err)
	}
	opts := []seedblast.Option{
		seedblast.WithStep2Kernel(kernel),
		seedblast.WithUngappedThreshold(*threshold),
		seedblast.WithMaxCandidates(*maxCand),
		seedblast.WithMaxEValue(*evalue),
		seedblast.WithTraceback(*full),
		seedblast.WithPipeline(seedblast.PipelineConfig{
			ShardSize:    *shardSize,
			InFlight:     *inflight,
			Step2Workers: workers,
			Step3Workers: workers,
		}),
	}
	rasc := seedblast.RASCOptions{NumPEs: *pes, NumFPGAs: *fpgas, OffloadGapped: *offloadGap}
	switch *engine {
	case "cpu":
		opts = append(opts, seedblast.WithEngine(seedblast.EngineCPU))
	case "rasc":
		opts = append(opts, seedblast.WithEngine(seedblast.EngineRASC), seedblast.WithRASC(rasc))
	case "multi":
		if *offloadGap {
			log.Fatal("-offload-gapped requires -engine rasc (step 3 stays on the host under multi dispatch)")
		}
		opts = append(opts, seedblast.WithEngine(seedblast.EngineMulti), seedblast.WithRASC(rasc))
	default:
		log.Fatalf("unknown engine %q (cpu, rasc, multi)", *engine)
	}

	searcher, err := seedblast.NewSearcher(opts...)
	if err != nil {
		log.Fatal(err)
	}
	results := searcher.Search(context.Background(),
		seedblast.NewProteinTarget(bank), seedblast.NewGenomeTarget(genome, code))

	if *format != "" {
		sum, n := streamMatches(results, *format)
		fmt.Fprintf(os.Stderr, "seedcmp: %d matches; pairs scored %d; hits %d\n", n, sum.Pairs, sum.Hits)
		fmt.Fprintf(os.Stderr, "seedcmp: timing: step1 %v, step2 %v, step3 %v\n",
			sum.Times.Index, sum.Times.Ungapped, sum.Times.Gapped)
		if pm := sum.Pipeline; pm.Prefilter.Shards > 0 {
			fmt.Fprintf(os.Stderr, "seedcmp: prefilter: kept %d / dropped %d candidate pairs in %v\n",
				pm.PrefilterKept, pm.PrefilterDropped, pm.Prefilter.Busy)
		}
		return
	}

	ms, err := results.Collect()
	if err != nil {
		log.Fatal(err)
	}
	sum, err := results.Summary()
	if err != nil {
		log.Fatal(err)
	}
	res := seedblast.GenomeResultFrom(ms, sum, len(genome))

	if *full {
		if err := report.WriteGenomeReport(os.Stdout, bank, genome, res, matrix.BLOSUM62); err != nil {
			log.Fatal(err)
		}
		printTiming(res)
		return
	}

	fmt.Printf("bank: %d proteins, %d aa; genome: %d nt\n",
		bank.Len(), bank.TotalResidues(), len(genome))
	fmt.Printf("pairs scored: %d; hits: %d; matches: %d\n",
		res.Pairs, res.Hits, len(res.Matches))
	printTiming(res)

	n := len(res.Matches)
	if *top > 0 && *top < n {
		n = *top
	}
	fmt.Printf("\n%-14s %-8s %8s %10s %12s  %s\n",
		"protein", "frame", "score", "bits", "E-value", "genome interval")
	for _, m := range res.Matches[:n] {
		fmt.Printf("%-14s %-8s %8d %10.1f %12.2e  [%d, %d)\n",
			bank.ID(m.Protein), m.Frame, m.Score, m.BitScore, m.EValue,
			m.NucStart, m.NucEnd)
	}
	if n < len(res.Matches) {
		fmt.Printf("... and %d more\n", len(res.Matches)-n)
	}
}

// streamMatches writes every match to stdout as it leaves the
// pipeline — json is NDJSON in the service's AlignmentJSON encoding,
// tsv is tab-separated with a header — and returns the summary once
// the stream is drained.
func streamMatches(results *seedblast.Results, format string) (*seedblast.Summary, int) {
	enc := json.NewEncoder(os.Stdout)
	if format == "tsv" {
		fmt.Println("query\tframe\tscore\tbits\teValue\tqStart\tqEnd\tnucStart\tnucEnd")
	}
	n := 0
	for m, err := range results.Matches() {
		if err != nil {
			log.Fatal(err)
		}
		n++
		switch format {
		case "json":
			aj := service.MatchJSON(&m)
			if err := enc.Encode(aj); err != nil {
				log.Fatal(err)
			}
		case "tsv":
			fmt.Printf("%s\t%s\t%d\t%.1f\t%.2e\t%d\t%d\t%d\t%d\n",
				m.Query.ID, m.Subject.Frame, m.Score, m.BitScore, m.EValue,
				m.Q.Start, m.Q.End, m.Subject.NucStart, m.Subject.NucEnd)
		}
	}
	sum, err := results.Summary()
	if err != nil {
		log.Fatal(err)
	}
	return sum, n
}

func printTiming(res *seedblast.GenomeResult) {
	fr := res.Times.Fractions()
	fmt.Printf("timing: step1 %v, step2 %v, step3 %v (%.1f%% / %.1f%% / %.1f%%)\n",
		res.Times.Index, res.Times.Ungapped, res.Times.Gapped,
		100*fr[0], 100*fr[1], 100*fr[2])
	if res.Device != nil {
		fmt.Printf("device: utilization %.1f%%, %.4fs simulated step 2 (compute %.4fs, DMA %.4fs)\n",
			100*res.Device.Utilization,
			res.Device.Seconds, res.Device.ComputeSeconds, res.Device.DMASeconds)
	}
	if res.GapDevice != nil {
		fmt.Printf("gap operator: %d tasks, %.4fs simulated step 3\n",
			res.GapDevice.Tasks, res.GapDevice.Seconds)
	}
	if pm := res.Pipeline; pm.Shards > 1 {
		fmt.Printf("pipeline: %d shards, wall %v (busy: step1 %v, step2 %v, step3 %v)\n",
			pm.Shards, pm.Wall, pm.Index.Busy, pm.Step2.Busy, pm.Step3.Busy)
		names := make([]string, 0, len(pm.ShardsByBackend))
		for name := range pm.ShardsByBackend {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  backend %s: %d shards\n", name, pm.ShardsByBackend[name])
		}
	}
	printKernels(res.Pipeline.ShardsByKernel)
	printPrefilter(&res.Pipeline)
}

// printPrefilter reports the candidate-selection cut when the stage
// ran. Like the kernel split, the counters come from pipeline.Metrics,
// so a merged (multi-run) Metrics prints its fold-up the same way.
func printPrefilter(pm *seedblast.PipelineMetrics) {
	if pm.Prefilter.Shards == 0 {
		return
	}
	total := pm.PrefilterKept + pm.PrefilterDropped
	sel := 0.0
	if total > 0 {
		sel = 100 * float64(pm.PrefilterKept) / float64(total)
	}
	fmt.Printf("prefilter: %d shards in %v; kept %d / dropped %d candidate pairs (%.1f%% extended)\n",
		pm.Prefilter.Shards, pm.Prefilter.Busy, pm.PrefilterKept, pm.PrefilterDropped, sel)
}

// printKernels reports which step-2 CPU kernel(s) actually ran — the
// resolution of -kernel auto is otherwise invisible. Accelerator
// shards carry no kernel and are reported by the device line instead.
func printKernels(byKernel map[string]int) {
	names := make([]string, 0, len(byKernel))
	for name := range byKernel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("kernel %s: %d shards\n", name, byKernel[name])
	}
}

func loadInputs(proteinsPath, genomePath string, synthetic, genomeLen, plant int, seed int64) (*seedblast.Bank, []byte, error) {
	var bank *seedblast.Bank
	var genome []byte
	var err error
	switch {
	case proteinsPath != "":
		bank, err = seedblast.LoadProteinFASTA("bank", proteinsPath)
		if err != nil {
			return nil, nil, err
		}
	case synthetic > 0:
		bank = seedblast.GenerateProteins(seedblast.ProteinConfig{N: synthetic, Seed: seed})
	default:
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case genomePath != "":
		genome, err = seedblast.LoadGenomeFASTA(genomePath)
		if err != nil {
			return nil, nil, err
		}
	default:
		genome, _, err = seedblast.GenerateGenome(seedblast.GenomeConfig{
			Length:       genomeLen,
			Source:       bank,
			PlantCount:   plant,
			PlantSubRate: 0.2,
			Seed:         seed + 1,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return bank, genome, nil
}
