// Command loadgen drives a running seedservd or seedclusterd with a
// synthetic comparison workload and records what the daemon's own
// telemetry says about it: /metrics is scraped (and grammar-checked)
// before and after the run, every job's span trace is fetched over
// GET /v1/jobs/{id}/trace, and the result is a schema-versioned
// BENCH_*.json with cold-start latency, sustained throughput per core
// and exact per-stage p50/p95/p99 — the serving-side counterpart of
// cmd/benchrec's offline microbenchmarks.
//
// Closed mode (default) keeps -concurrency jobs in flight
// back-to-back, measuring capacity; open mode submits at a fixed
// -rate regardless of completions, measuring behaviour under offered
// load. Both speak the ordinary job API, so the same invocation works
// against a worker or a whole cluster:
//
//	loadgen -target http://127.0.0.1:8844 -duration 10s -out BENCH_0008.json
//	loadgen -target http://127.0.0.1:8844 -mode open -rate 20 -duration 30s
//	loadgen -check BENCH_0008.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/benchfmt"
	"seedblast/internal/service"
	"seedblast/internal/telemetry"
)

// StageQuantiles is one span series' exact latency quantiles, computed
// from the per-job traces (not histogram interpolation): "request" and
// step1/2/3 on a worker, partition/scatter/volume/gather plus the
// grafted worker stages on a cluster. "job" is the client-observed
// submit-to-done latency loadgen measures itself.
type StageQuantiles struct {
	Stage string  `json:"stage"`
	Count int     `json:"count"`
	P50MS float64 `json:"p50MS"`
	P95MS float64 `json:"p95MS"`
	P99MS float64 `json:"p99MS"`
}

// Record is the file layout of a loadgen BENCH_NNNN.json
// (benchfmt.SchemaLoadgen; documented in EXPERIMENTS.md).
type Record struct {
	Schema     string              `json:"schema"`
	ID         string              `json:"id"`
	Provenance benchfmt.Provenance `json:"provenance"`
	Daemon     string              `json:"daemon"` // seedservd or seedclusterd
	Mode       string              `json:"mode"`   // closed or open
	Workload   string              `json:"workload"`

	DurationS   float64 `json:"durationS"`
	Concurrency int     `json:"concurrency,omitempty"` // closed mode
	RateHz      float64 `json:"rateHz,omitempty"`      // open mode

	// ColdStartMS is the first job's submit-to-done latency against the
	// freshly started daemon — subject index build included. Every later
	// job hits the shared index cache.
	ColdStartMS float64 `json:"coldStartMS"`
	Jobs        int     `json:"jobs"` // completed during the timed window
	Failures    int     `json:"failures"`
	JobsPerSec  float64 `json:"jobsPerSec"`
	// JobsPerSecPerCore normalizes throughput by the client host's core
	// count (loadgen and daemon share the host in the CI smoke).
	JobsPerSecPerCore float64 `json:"jobsPerSecPerCore"`
	// CompletedCounterDelta is the daemon's own completed-requests
	// counter movement across the run (scraped from /metrics), a
	// cross-check against Jobs as the daemon counted them.
	CompletedCounterDelta float64 `json:"completedCounterDelta"`

	Stages []StageQuantiles `json:"stages"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		target      = flag.String("target", "http://127.0.0.1:8844", "daemon base URL (seedservd or seedclusterd)")
		mode        = flag.String("mode", "closed", "closed (fixed concurrency, back-to-back) or open (fixed submit rate)")
		concurrency = flag.Int("concurrency", 4, "closed mode: jobs in flight")
		rate        = flag.Float64("rate", 8, "open mode: submissions per second")
		duration    = flag.Duration("duration", 10*time.Second, "timed window length")
		queries     = flag.Int("queries", 4, "query sequences per job")
		queryLen    = flag.Int("query-len", 120, "query length")
		subjects    = flag.Int("subjects", 64, "subject sequences per job")
		subjectLen  = flag.Int("subject-len", 300, "subject length")
		seedV       = flag.Int64("seed", 42, "workload RNG seed")
		out         = flag.String("out", "", "write the record here (empty: print to stdout)")
		id          = flag.String("id", "BENCH_0008", "record identifier")
		check       = flag.String("check", "", "validate an existing record file and exit")
	)
	flag.Parse()

	if *check != "" {
		if err := checkRecord(*check); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: ok", *check)
		return
	}

	req := buildRequest(*seedV, *queries, *queryLen, *subjects, *subjectLen)
	rec := Record{
		Schema:     benchfmt.SchemaLoadgen,
		ID:         *id,
		Provenance: benchfmt.Collect(),
		Mode:       *mode,
		Workload: fmt.Sprintf("%d×%daa queries vs %d×%daa subjects per job, defaults otherwise",
			*queries, *queryLen, *subjects, *subjectLen),
	}

	ctx := context.Background()
	cl := service.NewClient(*target, service.ClientConfig{})
	hctx, hcancel := context.WithTimeout(ctx, 10*time.Second)
	err := cl.WaitHealthy(hctx)
	hcancel()
	if err != nil {
		log.Fatal(err)
	}

	before, err := scrape(ctx, *target)
	if err != nil {
		log.Fatalf("metrics before: %v", err)
	}
	rec.Daemon, err = daemonKind(before)
	if err != nil {
		log.Fatal(err)
	}
	if rec.Daemon == "seedservd" {
		if err := checkWorkerFamilies(before); err != nil {
			log.Fatal(err)
		}
	}

	col := newCollector()

	// Cold start: one job alone against the fresh daemon, index build
	// and all. It is deliberately outside the timed window — mixing the
	// one-off build into a 10 s throughput number would misstate both.
	coldMS, err := col.runJob(ctx, cl, req)
	if err != nil {
		log.Fatalf("cold-start job: %v", err)
	}
	rec.ColdStartMS = round3(coldMS)
	log.Printf("cold start: %.1f ms", coldMS)
	col.reset() // keep the timed window's quantiles pure

	start := time.Now()
	switch *mode {
	case "closed":
		rec.Concurrency = *concurrency
		runClosed(ctx, cl, req, col, *concurrency, *duration)
	case "open":
		rec.RateHz = *rate
		runOpen(ctx, cl, req, col, *rate, *duration)
	default:
		log.Fatalf("unknown -mode %q (closed, open)", *mode)
	}
	elapsed := time.Since(start)

	after, err := scrape(ctx, *target)
	if err != nil {
		log.Fatalf("metrics after: %v", err)
	}
	rec.CompletedCounterDelta = completedDelta(rec.Daemon, before, after)

	rec.DurationS = round3(elapsed.Seconds())
	rec.Jobs = col.jobs
	rec.Failures = col.failures
	rec.JobsPerSec = round3(float64(col.jobs) / elapsed.Seconds())
	rec.JobsPerSecPerCore = round3(rec.JobsPerSec / float64(runtime.NumCPU()))
	rec.Stages = col.quantiles()

	log.Printf("%s %s: %d jobs in %.1fs (%.2f jobs/s, %.3f per core), %d failures",
		rec.Daemon, rec.Mode, rec.Jobs, rec.DurationS, rec.JobsPerSec, rec.JobsPerSecPerCore, rec.Failures)
	for _, sq := range rec.Stages {
		log.Printf("  %-10s n=%-5d p50=%.2fms p95=%.2fms p99=%.2fms", sq.Stage, sq.Count, sq.P50MS, sq.P95MS, sq.P99MS)
	}

	buf, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// buildRequest generates the per-job wire request: deterministic
// random banks, every job identical so all but the first hit the
// daemon's subject-index cache (the steady-state serving regime).
func buildRequest(seed int64, n0, l0, n1, l1 int) *service.JobRequestJSON {
	rng := bank.NewRNG(seed)
	req := &service.JobRequestJSON{}
	for i := 0; i < n0; i++ {
		req.Query = append(req.Query, service.SequenceJSON{
			ID: fmt.Sprintf("q%d", i), Seq: alphabet.DecodeProtein(bank.RandomProtein(rng, l0)),
		})
	}
	for i := 0; i < n1; i++ {
		req.Subject = append(req.Subject, service.SequenceJSON{
			ID: fmt.Sprintf("s%d", i), Seq: alphabet.DecodeProtein(bank.RandomProtein(rng, l1)),
		})
	}
	return req
}

// collector accumulates per-job outcomes and span durations across the
// worker goroutines.
type collector struct {
	mu       sync.Mutex
	jobs     int
	failures int
	spans    map[string][]float64 // span name → durations (ms)
}

func newCollector() *collector {
	return &collector{spans: make(map[string][]float64)}
}

func (c *collector) reset() {
	c.mu.Lock()
	c.jobs, c.failures = 0, 0
	c.spans = make(map[string][]float64)
	c.mu.Unlock()
}

// runJob submits one job, waits it out, fetches its trace and folds
// everything into the collector. Returns the client-observed
// submit-to-done latency in ms.
func (c *collector) runJob(ctx context.Context, cl *service.Client, req *service.JobRequestJSON) (float64, error) {
	start := time.Now()
	id, err := cl.Submit(ctx, req)
	if err != nil {
		return 0, err
	}
	st, err := cl.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		return 0, err
	}
	if st.State != string(service.JobDone) {
		return 0, fmt.Errorf("job %s: %s: %s", id, st.State, st.Error)
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)

	c.mu.Lock()
	c.jobs++
	c.spans["job"] = append(c.spans["job"], ms)
	c.mu.Unlock()

	// The trace is the daemon's own per-stage account of the job; a
	// fetch failure costs quantile samples, not the job.
	if tj, err := cl.Trace(ctx, id); err == nil {
		c.mu.Lock()
		for _, sp := range tj.Spans {
			c.spans[sp.Name] = append(c.spans[sp.Name], sp.DurationMS)
		}
		c.mu.Unlock()
	}
	return ms, nil
}

func (c *collector) fail() {
	c.mu.Lock()
	c.failures++
	c.mu.Unlock()
}

// quantiles computes exact per-stage p50/p95/p99 from the collected
// span durations, stages sorted by name for a stable record.
func (c *collector) quantiles() []StageQuantiles {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.spans))
	for name := range c.spans {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]StageQuantiles, 0, len(names))
	for _, name := range names {
		ds := c.spans[name]
		sort.Float64s(ds)
		out = append(out, StageQuantiles{
			Stage: name,
			Count: len(ds),
			P50MS: round3(quantile(ds, 0.50)),
			P95MS: round3(quantile(ds, 0.95)),
			P99MS: round3(quantile(ds, 0.99)),
		})
	}
	return out
}

// quantile returns the q-th quantile of sorted by nearest rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runClosed keeps `concurrency` jobs in flight back-to-back until the
// window closes: the classic capacity measurement.
func runClosed(ctx context.Context, cl *service.Client, req *service.JobRequestJSON,
	col *collector, concurrency int, d time.Duration) {
	dctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dctx.Err() == nil {
				if _, err := col.runJob(dctx, cl, req); err != nil {
					if dctx.Err() != nil {
						return // window closed mid-job, not a failure
					}
					col.fail()
				}
			}
		}()
	}
	wg.Wait()
}

// runOpen submits at a fixed rate whatever the completions do —
// offered load, not capacity. In-flight jobs are capped generously so
// a stalled daemon degrades the measurement instead of the client.
func runOpen(ctx context.Context, cl *service.Client, req *service.JobRequestJSON,
	col *collector, rate float64, d time.Duration) {
	if rate <= 0 {
		log.Fatal("-rate must be positive in open mode")
	}
	dctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	sem := make(chan struct{}, 256)
	var wg sync.WaitGroup
	for {
		select {
		case <-dctx.Done():
			wg.Wait()
			return
		case <-tick.C:
		}
		select {
		case sem <- struct{}{}:
		default:
			col.fail() // in-flight cap hit: the daemon is not keeping up
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// Jobs submitted inside the window may finish after it; they
			// still count — open mode measures offered load.
			jctx, jcancel := context.WithTimeout(ctx, d)
			defer jcancel()
			if _, err := col.runJob(jctx, cl, req); err != nil {
				col.fail()
			}
		}()
	}
}

// scrape fetches and strictly parses a daemon's /metrics — every run
// of loadgen doubles as a grammar check of the exposition.
func scrape(ctx context.Context, target string) (telemetry.Families, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	fams, err := telemetry.ParseText(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("%s/metrics: %w", target, err)
	}
	return fams, nil
}

// daemonKind tells a worker from a coordinator by which metric
// families its /metrics serves.
func daemonKind(fams telemetry.Families) (string, error) {
	if _, ok := fams.Value("seedservd_requests_submitted_total"); ok {
		return "seedservd", nil
	}
	if _, ok := fams.Value("seedclusterd_requests_total"); ok {
		return "seedclusterd", nil
	}
	return "", fmt.Errorf("target serves neither seedservd nor seedclusterd metrics")
}

// workerFamilies is the metric surface a seedservd is expected to
// serve; a scrape missing any of them fails the run. The list is the
// contract the dashboards are built on, so a renamed or dropped family
// breaks here — in CI's loadgen smoke — instead of in production.
var workerFamilies = []string{
	"seedservd_requests_submitted_total",
	"seedservd_requests_completed_total",
	"seedservd_requests_failed_total",
	"seedservd_requests_running",
	"seedservd_requests_waiting",
	"seedservd_stage_busy_seconds_total",
	"seedservd_engine_wall_seconds_total",
	"seedservd_alignments_total",
	"seedservd_prefilter_kept_total",
	"seedservd_prefilter_dropped_total",
	"seedservd_prefilter_survivors",
	"seedservd_index_cache_hits_total",
	"seedservd_index_cache_misses_total",
	"seedservd_index_cache_evictions_total",
	"seedservd_index_cache_disk_loads_total",
	"seedservd_index_cache_entries",
	"seedservd_index_cache_hit_rate",
	"seedservd_stage_seconds",
	"seedservd_request_seconds",
}

// checkWorkerFamilies verifies the worker serves its full expected
// metric surface (families are keyed by base name, so histograms are
// matched by their family name, not their _bucket/_count series).
func checkWorkerFamilies(fams telemetry.Families) error {
	var missing []string
	for _, name := range workerFamilies {
		if fams[name] == nil {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("worker /metrics is missing expected families: %v", missing)
	}
	return nil
}

// completedDelta reads how far the daemon's completed-requests counter
// moved across the run.
func completedDelta(daemon string, before, after telemetry.Families) float64 {
	name := daemon + "_requests_completed_total"
	b, _ := before.Value(name)
	a, _ := after.Value(name)
	return a - b
}

// checkRecord validates a loadgen record file: schema, provenance and
// the measurement invariants the CI smoke gate relies on.
func checkRecord(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != benchfmt.SchemaLoadgen {
		return fmt.Errorf("%s: schema %q, want %q", path, rec.Schema, benchfmt.SchemaLoadgen)
	}
	if rec.ID == "" {
		return fmt.Errorf("%s: missing id", path)
	}
	if err := rec.Provenance.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rec.Daemon != "seedservd" && rec.Daemon != "seedclusterd" {
		return fmt.Errorf("%s: daemon %q", path, rec.Daemon)
	}
	if rec.Mode != "closed" && rec.Mode != "open" {
		return fmt.Errorf("%s: mode %q", path, rec.Mode)
	}
	if rec.Jobs <= 0 || rec.JobsPerSec <= 0 || rec.DurationS <= 0 {
		return fmt.Errorf("%s: empty measurement (jobs=%d jobsPerSec=%g durationS=%g)",
			path, rec.Jobs, rec.JobsPerSec, rec.DurationS)
	}
	if rec.ColdStartMS <= 0 {
		return fmt.Errorf("%s: missing cold-start sample", path)
	}
	if len(rec.Stages) == 0 {
		return fmt.Errorf("%s: no stage quantiles", path)
	}
	for _, sq := range rec.Stages {
		if sq.Count <= 0 {
			return fmt.Errorf("%s: stage %q has no samples", path, sq.Stage)
		}
		if sq.P50MS > sq.P95MS || sq.P95MS > sq.P99MS {
			return fmt.Errorf("%s: stage %q quantiles not monotonic (%g/%g/%g)",
				path, sq.Stage, sq.P50MS, sq.P95MS, sq.P99MS)
		}
	}
	return nil
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
