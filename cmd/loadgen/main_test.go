package main

import (
	"bytes"
	"strings"
	"testing"

	"seedblast/internal/service"
	"seedblast/internal/telemetry"
)

// TestWorkerFamiliesMatchServiceRegistry pins the schema contract
// in-process, without a daemon: the families a freshly constructed
// service actually registers and the workerFamilies list must agree in
// both directions. This is the same drift the metricname seedlint
// analyzer catches statically; the test catches it dynamically (and
// covers registration paths the analyzer's syntax can't see).
func TestWorkerFamiliesMatchServiceRegistry(t *testing.T) {
	s := service.New(service.Config{})
	defer s.Close()

	var buf bytes.Buffer
	if _, err := s.Registry().WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	fams, err := telemetry.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}

	// Direction 1: every schema family is actually served.
	if err := checkWorkerFamilies(fams); err != nil {
		t.Errorf("schema lists families the service does not register: %v", err)
	}

	// Direction 2: every served seedservd_ family is in the schema.
	inSchema := make(map[string]bool, len(workerFamilies))
	for _, name := range workerFamilies {
		inSchema[name] = true
	}
	for name := range fams {
		if strings.HasPrefix(name, "seedservd_") && !inSchema[name] {
			t.Errorf("service registers %s but workerFamilies does not list it", name)
		}
	}
}
