// Command psctrace runs the cycle-accurate PSC operator micro-engine
// on a small random batch and prints the per-cycle event trace: PE
// finishes, result-management pushes, FIFO cascade pops and
// back-pressure stalls — the architecture of the paper's Figures 1-2
// in action.
//
// Example:
//
//	psctrace -pes 8 -slot 4 -il0 6 -il1 10 -threshold 20
package main

import (
	"flag"
	"fmt"
	"log"

	"seedblast/internal/bank"
	"seedblast/internal/hwsim"
	"seedblast/internal/matrix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psctrace: ")

	var (
		pes       = flag.Int("pes", 8, "PE array size")
		slot      = flag.Int("slot", 4, "PEs per slot (register barrier between slots)")
		fifoDepth = flag.Int("fifo", 8, "result FIFO depth per slot")
		subLen    = flag.Int("sublen", 16, "sub-sequence length W+2N")
		nIL0      = flag.Int("il0", 6, "IL0 sub-sequences to load")
		nIL1      = flag.Int("il1", 10, "IL1 sub-sequences to stream")
		threshold = flag.Int("threshold", 20, "result threshold")
		seed      = flag.Int64("seed", 1, "RNG seed")
		identical = flag.Bool("dense", false, "use identical windows everywhere (dense hits, forces stalls)")
	)
	flag.Parse()

	cfg := hwsim.PSCConfig{
		NumPEs:    *pes,
		SlotSize:  *slot,
		FIFODepth: *fifoDepth,
		SubLen:    *subLen,
		Threshold: *threshold,
		Matrix:    matrix.BLOSUM62,
	}
	op, err := hwsim.NewOperator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	op.Trace = func(cycle uint64, event string) {
		fmt.Printf("[%6d] %s\n", cycle, event)
	}

	rng := bank.NewRNG(*seed)
	il0 := make([][]byte, *nIL0)
	var shared []byte
	if *identical {
		shared = bank.RandomProtein(rng, *subLen)
	}
	for i := range il0 {
		if *identical {
			il0[i] = shared
		} else {
			il0[i] = bank.RandomProtein(rng, *subLen)
		}
	}
	var il1 []byte
	for j := 0; j < *nIL1; j++ {
		if *identical {
			il1 = append(il1, shared...)
		} else {
			il1 = append(il1, bank.RandomProtein(rng, *subLen)...)
		}
	}

	fmt.Printf("PSC operator: %d PEs in slots of %d, FIFO depth %d, L=%d, T=%d\n",
		*pes, *slot, *fifoDepth, *subLen, *threshold)
	fmt.Printf("loading %d IL0 sub-sequences, streaming %d IL1 sub-sequences\n\n",
		*nIL0, *nIL1)
	if err := op.LoadIL0(il0); err != nil {
		log.Fatal(err)
	}
	loadCycles := op.Cycles()
	fmt.Printf("-- load phase: %d cycles --\n", loadCycles)
	recs, err := op.StreamIL1(il1, *nIL1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- done: %d total cycles (%d stall), %d records --\n",
		op.Cycles(), op.StallCycles(), len(recs))
	model := cfg.PassCycles(*nIL0, *nIL1)
	fmt.Printf("closed-form model: %d cycles (+ cascade drain tail)\n", model)
}
