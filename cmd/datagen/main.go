// Command datagen generates the synthetic workloads the experiments
// use: protein banks, genomes with planted genes, and family
// benchmarks, written as FASTA files.
//
// Examples:
//
//	datagen -kind proteins -n 1000 -out bank.fa
//	datagen -kind genome -len 2000000 -source bank.fa -plant 20 -out genome.fa
//	datagen -kind family -families 25 -out-queries q.fa -out-genome g.fa
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"seedblast"
	"seedblast/internal/alphabet"
	"seedblast/internal/seqio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		kind    = flag.String("kind", "proteins", "what to generate: proteins, genome, family")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output FASTA file (proteins, genome)")
		n       = flag.Int("n", 1000, "proteins: number of sequences")
		meanLen = flag.Int("mean-len", 330, "proteins: mean length")

		genomeLen = flag.Int("len", 1_000_000, "genome: length in nucleotides")
		source    = flag.String("source", "", "genome: protein FASTA to plant genes from")
		plant     = flag.Int("plant", 10, "genome: number of genes to plant")
		subRate   = flag.Float64("sub-rate", 0.2, "genome: substitution rate for planted genes")

		families   = flag.Int("families", 25, "family: number of families")
		members    = flag.Int("members", 4, "family: members per family")
		memberLen  = flag.Int("member-len", 200, "family: member length")
		divergence = flag.Float64("divergence", 0.45, "family: member divergence")
		outQueries = flag.String("out-queries", "", "family: queries FASTA output")
		outGenome  = flag.String("out-genome", "", "family: genome FASTA output")
	)
	flag.Parse()

	var err error
	switch *kind {
	case "proteins":
		err = genProteins(*out, *n, *meanLen, *seed)
	case "genome":
		err = genGenome(*out, *genomeLen, *source, *plant, *subRate, *seed)
	case "family":
		err = genFamily(*outQueries, *outGenome, *families, *members, *memberLen, *divergence, *seed)
	default:
		log.Fatalf("unknown kind %q (proteins, genome, family)", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func requireOut(path, flagName string) {
	if path == "" {
		log.Printf("missing -%s", flagName)
		flag.Usage()
		os.Exit(2)
	}
}

func genProteins(out string, n, meanLen int, seed int64) error {
	requireOut(out, "out")
	b := seedblast.GenerateProteins(seedblast.ProteinConfig{N: n, MeanLen: meanLen, Seed: seed})
	if err := seedblast.WriteProteinFASTA(out, b); err != nil {
		return err
	}
	fmt.Printf("wrote %d proteins (%d aa) to %s\n", b.Len(), b.TotalResidues(), out)
	return nil
}

func genGenome(out string, length int, source string, plant int, subRate float64, seed int64) error {
	requireOut(out, "out")
	cfg := seedblast.GenomeConfig{
		Length:       length,
		PlantCount:   plant,
		PlantSubRate: subRate,
		Seed:         seed,
	}
	if source != "" {
		b, err := seedblast.LoadProteinFASTA("source", source)
		if err != nil {
			return err
		}
		cfg.Source = b
	} else {
		cfg.PlantCount = 0
	}
	genome, genes, err := seedblast.GenerateGenome(cfg)
	if err != nil {
		return err
	}
	rec := &seqio.Record{
		ID:          "synthetic",
		Description: fmt.Sprintf("length=%d planted=%d seed=%d", length, len(genes), seed),
		Seq:         []byte(alphabet.DecodeDNA(genome)),
	}
	if err := seqio.WriteFile(out, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %d nt genome with %d planted genes to %s\n", length, len(genes), out)
	for _, g := range genes {
		fmt.Printf("  gene: protein=%d start=%d len=%d frame=%s\n",
			g.ProteinIdx, g.Start, g.NucLen, g.Frame)
	}
	return nil
}

func genFamily(outQueries, outGenome string, families, members, memberLen int, divergence float64, seed int64) error {
	requireOut(outQueries, "out-queries")
	requireOut(outGenome, "out-genome")
	fb, err := seedblast.GenerateFamilyBenchmark(seedblast.FamilyConfig{
		Families:         families,
		MembersPerFamily: members,
		MemberLen:        memberLen,
		Divergence:       divergence,
		Seed:             seed,
	})
	if err != nil {
		return err
	}
	if err := seedblast.WriteProteinFASTA(outQueries, fb.Queries); err != nil {
		return err
	}
	rec := &seqio.Record{
		ID:          "family-genome",
		Description: fmt.Sprintf("families=%d members=%d decoys=%d", families, members, fb.NumDecoys),
		Seq:         []byte(alphabet.DecodeDNA(fb.Genome)),
	}
	if err := seqio.WriteFile(outGenome, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %d queries to %s and %d nt genome (%d members, %d decoys) to %s\n",
		fb.Queries.Len(), outQueries, len(fb.Genome), len(fb.Members), fb.NumDecoys, outGenome)
	return nil
}
