// Command seedservd serves the seed-based comparison pipeline over
// HTTP+JSON: clients submit bank-vs-bank or protein-vs-genome jobs,
// poll their status and fetch alignments; prebuilt subject indexes are
// cached and shared across requests and a worker pool bounds how many
// comparisons run at once.
//
//	seedservd -addr :8844 -max-concurrent 4 -cache-entries 16
//
//	# serve a prebuilt seed index (cmd/seeddb) so step 1 is never
//	# recomputed — the cache is pre-warmed at start and misses for the
//	# stored fingerprint reload from disk:
//	seeddb build -proteins nr.fasta -out nr.seeddb
//	seedservd -db nr.seeddb
//
//	# submit, poll, fetch (add ?stream=1 for chunked NDJSON — one
//	# alignment per line, decoded incrementally by
//	# service.Client.StreamAlignments):
//	curl -s localhost:8844/v1/jobs -d '{"query":[{"id":"q0","seq":"MKV..."}],
//	  "subject":[{"id":"s0","seq":"MKI..."}],"options":{"maxEValue":10}}'
//	curl -s localhost:8844/v1/jobs/job-1
//	curl -s localhost:8844/v1/jobs/job-1/alignments
//	curl -sN localhost:8844/v1/jobs/job-1/alignments?stream=1
//	curl -s localhost:8844/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"seedblast/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seedservd: ")

	var (
		addr          = flag.String("addr", ":8844", "listen address")
		maxConcurrent = flag.Int("max-concurrent", 2, "comparisons admitted at once (worker pool size)")
		cacheEntries  = flag.Int("cache-entries", 8, "subject-index LRU cache capacity")
		maxJobs       = flag.Int("max-jobs", 256, "finished jobs kept pollable before the oldest are dropped")
		jobTTL        = flag.Duration("job-ttl", 15*time.Minute, "finished jobs expire after this age (negative disables)")
		maxQueued     = flag.Int("max-queued", 1024, "unfinished jobs accepted before submissions are rejected")
		dbPaths       = flag.String("db", "", "comma-separated seeddb files (cmd/seeddb) to pre-warm the subject-index cache with; cache misses for their fingerprints reload from disk instead of rebuilding")
	)
	flag.Parse()

	svc := service.New(service.Config{
		MaxConcurrent:   *maxConcurrent,
		CacheEntries:    *cacheEntries,
		MaxJobsRetained: *maxJobs,
		JobTTL:          *jobTTL,
		MaxQueued:       *maxQueued,
		Logf:            log.Printf,
	})
	for _, path := range strings.Split(*dbPaths, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		fp, err := svc.PreloadDB(path)
		if err != nil {
			log.Fatalf("-db %s: %v", path, err)
		}
		log.Printf("preloaded %s (fingerprint %.16s…)", path, fp)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	log.Printf("listening on %s (max-concurrent=%d cache-entries=%d)",
		*addr, svc.Config().MaxConcurrent, svc.Config().CacheEntries)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	svc.Close()
}
