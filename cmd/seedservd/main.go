// Command seedservd serves the seed-based comparison pipeline over
// HTTP+JSON: clients submit bank-vs-bank or protein-vs-genome jobs,
// poll their status and fetch alignments; prebuilt subject indexes are
// cached and shared across requests and a worker pool bounds how many
// comparisons run at once.
//
//	seedservd -addr :8844 -max-concurrent 4 -cache-entries 16
//
//	# serve a prebuilt seed index (cmd/seeddb) so step 1 is never
//	# recomputed — the cache is pre-warmed at start and misses for the
//	# stored fingerprint reload from disk:
//	seeddb build -proteins nr.fasta -out nr.seeddb
//	seedservd -db nr.seeddb
//
//	# submit, poll, fetch (add ?stream=1 for chunked NDJSON — one
//	# alignment per line, decoded incrementally by
//	# service.Client.StreamAlignments):
//	curl -s localhost:8844/v1/jobs -d '{"query":[{"id":"q0","seq":"MKV..."}],
//	  "subject":[{"id":"s0","seq":"MKI..."}],"options":{"maxEValue":10}}'
//	curl -s localhost:8844/v1/jobs/job-1
//	curl -s localhost:8844/v1/jobs/job-1/alignments
//	curl -sN localhost:8844/v1/jobs/job-1/alignments?stream=1
//	curl -s localhost:8844/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"seedblast/internal/service"
	"seedblast/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", ":8844", "listen address")
		maxConcurrent = flag.Int("max-concurrent", 2, "comparisons admitted at once (worker pool size)")
		cacheEntries  = flag.Int("cache-entries", 8, "subject-index LRU cache capacity")
		maxJobs       = flag.Int("max-jobs", 256, "finished jobs kept pollable before the oldest are dropped")
		jobTTL        = flag.Duration("job-ttl", 15*time.Minute, "finished jobs expire after this age (negative disables)")
		maxQueued     = flag.Int("max-queued", 1024, "unfinished jobs accepted before submissions are rejected")
		dbPaths       = flag.String("db", "", "comma-separated seeddb files (cmd/seeddb) to pre-warm the subject-index cache with; cache misses for their fingerprints reload from disk instead of rebuilding")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (own listener, kept off the public API; empty disables)")
		logJSON       = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	logger := newLogger(*logJSON)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	svc := service.New(service.Config{
		MaxConcurrent:   *maxConcurrent,
		CacheEntries:    *cacheEntries,
		MaxJobsRetained: *maxJobs,
		JobTTL:          *jobTTL,
		MaxQueued:       *maxQueued,
		Logger:          logger,
	})
	for _, path := range strings.Split(*dbPaths, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		fp, err := svc.PreloadDB(path)
		if err != nil {
			fatal("preload failed", "path", path, "err", err)
		}
		logger.Info("preloaded seeddb", "path", path, "fingerprint", fp[:16])
	}
	if *pprofAddr != "" {
		bound, err := telemetry.StartPprof(*pprofAddr, logger)
		if err != nil {
			fatal("pprof listener failed", "addr", *pprofAddr, "err", err)
		}
		logger.Info("pprof listening", "addr", bound)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	logger.Info("listening", "addr", *addr,
		"maxConcurrent", svc.Config().MaxConcurrent, "cacheEntries", svc.Config().CacheEntries)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve failed", "err", err)
	}
	svc.Close()
}

// newLogger builds the daemon's structured logger: text for humans at
// a terminal, JSON when a collector ingests the stream.
func newLogger(json bool) *slog.Logger {
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("daemon", "seedservd")
}
