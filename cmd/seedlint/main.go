// Seedlint is the repository's own static analyzer: a multichecker of
// five repo-specific analyzers enforcing engine invariants that no
// off-the-shelf tool knows about — mmap lifetimes (mmapclose),
// goroutine cancellation discipline (ctxselect), asm/noasm kernel
// parity (kernelparity), copy-on-write option setters (optclone), and
// meaningful Close errors (errclose). See DESIGN.md "Static analysis"
// for the invariants and internal/analysis for the implementations.
//
// Direct mode (what CI runs) analyzes packages like the go tool does:
//
//	seedlint ./...
//	seedlint -only mmapclose,errclose ./internal/service/
//
// It exits 0 when the tree is clean and 1 with one "file:line:col:
// analyzer: message" line per finding otherwise. Findings are waived
// in place with a //seedlint:allow <analyzer> -- reason comment.
//
// Seedlint also speaks enough of the go vet tool protocol to run as
//
//	go vet -vettool=$(which seedlint) ./...
//
// (the -V=full / -flags / config-file handshake), so editors wired to
// vet pick the analyzers up with no extra configuration.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"seedblast/internal/analysis"
)

func main() {
	// The vet tool protocol probes before any user flags: respond to
	// -V=full (version handshake) and -flags (flag discovery), and to
	// an invocation whose single argument is a vet config file.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			// The go tool derives the vet cache key from the trailing
			// buildID field, so hash the binary itself: a rebuilt
			// seedlint invalidates stale vet results.
			fmt.Printf("%s version devel comments-go-here buildID=%s\n",
				filepath.Base(os.Args[0]), selfContentID())
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetTool(os.Args[1]))
		}
	}

	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seedlint [-only a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAll(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(shortenPath(f.String()))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selfContentID hashes the running executable for the -V=full
// handshake's buildID field.
func selfContentID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.Analyzers, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// shortenPath trims the working directory off absolute positions so
// findings read as repo-relative paths.
func shortenPath(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	return strings.ReplaceAll(s, wd+string(filepath.Separator), "")
}

// vetConfig is the subset of the go vet unitchecker config seedlint
// reads. The go tool writes one such JSON file per package and invokes
// the tool with its path as the only argument.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string
	VetxOutput string
}

// runVetTool analyzes one package described by a vet config file and
// returns the process exit code: 0 clean, 2 with findings on stderr
// (matching x/tools' unitchecker convention).
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "seedlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go tool expects the facts output file to exist even though
	// seedlint exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "seedlint:", err)
			return 1
		}
	}
	// go vet feeds every package in the build graph — the standard
	// library and per-package test variants included. Seedlint's scope
	// is the module's own non-test sources, same as direct mode.
	path, _, _ := strings.Cut(cfg.ImportPath, " ")
	if path != "seedblast" && !strings.HasPrefix(path, "seedblast/") {
		return 0
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}
	var otherFiles []string
	for _, f := range cfg.NonGoFiles {
		if strings.HasSuffix(f, ".s") {
			otherFiles = append(otherFiles, f)
		}
	}
	pkg, err := analysis.ParsePackage(path, cfg.Dir, goFiles, otherFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		return 1
	}
	findings, err := analysis.RunAll(analysis.Analyzers, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
