// Seedlint is the repository's own static analyzer: a multichecker of
// ten repo-specific analyzers enforcing engine invariants that no
// off-the-shelf tool knows about. Five are per-package checks — mmap
// lifetimes (mmapclose), goroutine cancellation discipline
// (ctxselect), asm/noasm kernel parity (kernelparity), copy-on-write
// option setters (optclone), and meaningful Close errors (errclose) —
// joined by span lifetimes (spanend) and directive hygiene
// (directive). Three are cross-package dataflow checks that parse
// several packages into a shared facts layer: five-layer option
// plumbing (optplumb), map-iteration determinism at order-sensitive
// sinks (mapdet), and telemetry registry ↔ loadgen schema agreement
// (metricname). See DESIGN.md "Static analysis" for the invariants
// and internal/analysis for the implementations.
//
// Direct mode (what CI runs) analyzes packages like the go tool does:
//
//	seedlint ./...
//	seedlint -only mmapclose,errclose ./internal/service/
//	seedlint -json ./...
//
// It exits 0 when the tree is clean and 1 with one "file:line:col:
// analyzer: message" line per finding otherwise (-json switches to one
// NDJSON record per finding). Findings are waived in place with a
// //seedlint:allow <analyzer> -- reason comment. The go list load is
// performed once and shared by all ten analyzers (-timings prints the
// cold and memoized load wall times; -cpuprofile writes a pprof
// profile for measuring it).
//
// Seedlint also speaks enough of the go vet tool protocol to run as
//
//	go vet -vettool=$(which seedlint) ./...
//
// (the -V=full / -flags / config-file handshake), so editors wired to
// vet pick the analyzers up with no extra configuration. Under vet,
// per-package analyzers run on each package as vet feeds it; the
// cross-package analyzers run once, anchored to the module root
// package's invocation, over a whole-module load — so `go vet ./...`
// reports each cross-layer finding exactly once.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"seedblast/internal/analysis"
)

func main() {
	// The vet tool protocol probes before any user flags: respond to
	// -V=full (version handshake) and -flags (flag discovery), and to
	// an invocation whose single argument is a vet config file.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			// The go tool derives the vet cache key from the trailing
			// buildID field, so hash the binary itself: a rebuilt
			// seedlint invalidates stale vet results.
			fmt.Printf("%s version devel comments-go-here buildID=%s\n",
				filepath.Base(os.Args[0]), selfContentID())
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetTool(os.Args[1]))
		}
	}

	var (
		only       = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list       = flag.Bool("list", false, "list analyzers and exit")
		jsonOut    = flag.Bool("json", false, "emit findings as NDJSON records instead of text")
		timings    = flag.Bool("timings", false, "print package-load wall times (cold and memoized) to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seedlint [-only a,b] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seedlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "seedlint:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One go list + parse, memoized by SharedLoader and shared by all
	// ten analyzers in this process.
	start := time.Now()
	pkgs, err := analysis.SharedLoader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		os.Exit(2)
	}
	cold := time.Since(start)
	if *timings {
		start = time.Now()
		if _, err := analysis.SharedLoader.Load(".", patterns...); err != nil {
			fmt.Fprintln(os.Stderr, "seedlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "seedlint: loaded %d packages in %v (cold); memoized reload %v\n",
			len(pkgs), cold.Round(time.Millisecond), time.Since(start).Round(time.Microsecond))
	}
	findings, err := analysis.RunAll(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		os.Exit(2)
	}
	if err := printFindings(os.Stdout, findings, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the NDJSON record -json emits, one per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printFindings(w io.Writer, findings []analysis.Finding, asJSON bool) error {
	if !asJSON {
		for _, f := range findings {
			fmt.Fprintln(w, shortenPath(f.String()))
		}
		return nil
	}
	enc := json.NewEncoder(w)
	for _, f := range findings {
		rec := jsonFinding{
			File:     shortenPath(f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// selfContentID hashes the running executable for the -V=full
// handshake's buildID field.
func selfContentID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.Analyzers, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// shortenPath trims the working directory off absolute positions so
// findings read as repo-relative paths.
func shortenPath(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	return strings.ReplaceAll(s, wd+string(filepath.Separator), "")
}

// vetConfig is the subset of the go vet unitchecker config seedlint
// reads. The go tool writes one such JSON file per package and invokes
// the tool with its path as the only argument.
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string
	VetxOutput string
}

// runVetTool analyzes one package described by a vet config file and
// returns the process exit code: 0 clean, 2 with findings on stderr
// (matching x/tools' unitchecker convention).
//
// Per-package analyzers run on the unit vet handed us. The
// cross-package analyzers need several layers in view at once, so they
// are anchored: only the module root package's invocation runs them,
// over a whole-module load (memoized by SharedLoader). Every other
// unit skips them, so `go vet ./...` reports each cross-layer finding
// exactly once.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "seedlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go tool expects the facts output file to exist even though
	// seedlint exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "seedlint:", err)
			return 1
		}
	}
	// go vet feeds every package in the build graph — the standard
	// library and per-package test variants included. Seedlint's scope
	// is the module's own non-test sources, same as direct mode.
	path, _, _ := strings.Cut(cfg.ImportPath, " ")
	if path != "seedblast" && !strings.HasPrefix(path, "seedblast/") {
		return 0
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}
	var otherFiles []string
	for _, f := range cfg.NonGoFiles {
		if strings.HasSuffix(f, ".s") {
			otherFiles = append(otherFiles, f)
		}
	}
	pkg, err := analysis.ParsePackage(path, cfg.Dir, goFiles, otherFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		return 1
	}
	var perPkg, cross []*analysis.Analyzer
	for _, a := range analysis.Analyzers {
		if analysis.CrossPackage(a) {
			cross = append(cross, a)
		}
		if a.Run != nil {
			perPkg = append(perPkg, a)
		}
	}
	findings, err := analysis.RunAll(perPkg, []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "seedlint:", err)
		return 1
	}
	if path == "seedblast" {
		// Anchor unit: run the cross-package analyzers over the whole
		// module, loaded from the root package's directory.
		all, err := analysis.SharedLoader.Load(cfg.Dir, "./...")
		if err != nil {
			fmt.Fprintln(os.Stderr, "seedlint:", err)
			return 1
		}
		for _, a := range cross {
			fs, err := analysis.RunCross(a, all)
			if err != nil {
				fmt.Fprintln(os.Stderr, "seedlint:", err)
				return 1
			}
			findings = append(findings, fs...)
		}
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
