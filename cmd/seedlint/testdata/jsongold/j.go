// Package jsongold is the seedlint -json golden fixture: one
// per-package finding (mmapclose) and one cross-package finding
// (mapdet) with stable positions, pinned by TestSeedlintJSONGolden.
package jsongold

import (
	"fmt"
	"io"

	"seedblast/internal/index"
)

var totals = map[string]int{}

func leak(path string) {
	_, _ = index.Open(path)
}

func dump(w io.Writer) {
	for k := range totals {
		fmt.Fprintln(w, k)
	}
}
