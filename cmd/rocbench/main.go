// Command rocbench runs the sensitivity/selectivity evaluation of the
// paper's §4.4 (Table 6): queries with known family labels are searched
// against a genome of planted homologs and decoys by both the seed
// pipeline and the BLAST-style baseline, and the rankings are scored
// with ROC50 and AP-Mean.
//
// Example:
//
//	rocbench -families 25 -divergence 0.5
package main

import (
	"flag"
	"fmt"
	"log"

	"seedblast/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rocbench: ")

	var (
		families   = flag.Int("families", 25, "number of protein families")
		members    = flag.Int("members", 4, "planted members per family")
		memberLen  = flag.Int("member-len", 200, "member protein length")
		divergence = flag.Float64("divergence", 0.45, "per-residue divergence between members")
		decoys     = flag.Int("decoys", 120, "unrelated decoy genes")
		evalue     = flag.Float64("evalue", 10, "ranking E-value cutoff (relaxed so FPs appear)")
		seed       = flag.Int64("seed", 606, "workload seed")
	)
	flag.Parse()

	cfg := experiments.DefaultTable6Config()
	cfg.Family.Families = *families
	cfg.Family.MembersPerFamily = *members
	cfg.Family.MemberLen = *memberLen
	cfg.Family.Divergence = *divergence
	cfg.Family.DecoyGenes = *decoys
	cfg.Family.Seed = *seed
	cfg.MaxEValue = *evalue

	res, err := experiments.RunTable6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
}
