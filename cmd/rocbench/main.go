// Command rocbench runs the sensitivity/selectivity evaluation of the
// paper's §4.4 (Table 6): queries with known family labels are searched
// against a genome of planted homologs and decoys by both the seed
// pipeline and the BLAST-style baseline, and the rankings are scored
// with ROC50 and AP-Mean.
//
// With -max-candidates-sweep it instead runs the prefilter
// sensitivity-vs-speed sweep: the same ROC50/AP-Mean scoring on a
// blastp-style protein bank (members + decoys) while the candidate
// prefilter cut ranges over the listed k values.
//
// Example:
//
//	rocbench -families 25 -divergence 0.5
//	rocbench -max-candidates-sweep 0,2,4,8,16,32
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"seedblast/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rocbench: ")

	var (
		families   = flag.Int("families", 25, "number of protein families")
		members    = flag.Int("members", 4, "planted members per family")
		memberLen  = flag.Int("member-len", 200, "member protein length")
		divergence = flag.Float64("divergence", 0.45, "per-residue divergence between members")
		decoys     = flag.Int("decoys", 120, "unrelated decoy genes")
		evalue     = flag.Float64("evalue", 10, "ranking E-value cutoff (relaxed so FPs appear)")
		seed       = flag.Int64("seed", 606, "workload seed")
		sweep      = flag.String("max-candidates-sweep", "", "comma-separated maxCandidates values; runs the prefilter ROC50-vs-speed sweep instead of Table 6")
	)
	flag.Parse()

	cfg := experiments.DefaultTable6Config()
	cfg.Family.Families = *families
	cfg.Family.MembersPerFamily = *members
	cfg.Family.MemberLen = *memberLen
	cfg.Family.Divergence = *divergence
	cfg.Family.DecoyGenes = *decoys
	cfg.Family.Seed = *seed
	cfg.MaxEValue = *evalue

	if *sweep != "" {
		ks, err := parseKs(*sweep)
		if err != nil {
			log.Fatal(err)
		}
		res, err := experiments.RunPrefilterSweep(cfg, ks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Format())
		return
	}

	res, err := experiments.RunTable6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
}

func parseKs(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 0 {
			return nil, fmt.Errorf("bad -max-candidates-sweep value %q", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}
