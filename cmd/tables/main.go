// Command tables regenerates the paper's evaluation tables (1-7) on a
// synthetic workload at a chosen scale. Absolute seconds differ from
// the paper (simulated accelerator, synthetic data, modern host); the
// shapes — step-2 dominance, speedup growth with bank size and PE
// count, the 2-FPGA gain, the profile shift to step 3, BLAST-parity
// quality — are the reproduction targets.
//
// Examples:
//
//	tables                     # all tables at the default (small) scale
//	tables -scale tiny -table 4
//	tables -scale medium -pes 64,128,192
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"seedblast/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")

	var (
		scaleName = flag.String("scale", "small", "workload scale: tiny, small, medium, paper")
		table     = flag.Int("table", 0, "table to print (1-7, 8 = future-work projection); 0 = all")
		pesFlag   = flag.String("pes", "64,128,192", "PE array sizes to sweep")
		noBlast   = flag.Bool("no-baseline", false, "skip the sequential baseline (Table 2 empty)")
		families  = flag.Int("families", 25, "Table 6: number of families")
		verbose   = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	scale, err := experiments.ByName(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	peCounts, err := parsePEs(*pesFlag)
	if err != nil {
		log.Fatal(err)
	}

	needMeasure := *table != 6
	var ms *experiments.Measurements
	if needMeasure {
		if *verbose {
			fmt.Printf("generating %s workload (genome %d nt, banks %v)...\n",
				scale.Name, scale.GenomeLen, scale.BankSizes)
		}
		w, err := experiments.NewWorkload(scale)
		if err != nil {
			log.Fatal(err)
		}
		opt := experiments.MeasureOptions{
			PECounts:  peCounts,
			WithBlast: !*noBlast && (*table == 0 || *table == 2 || *table == 5),
		}
		if *verbose {
			opt.Progress = func(format string, args ...any) {
				fmt.Printf("  measuring "+format+"\n", args...)
			}
		}
		ms, err = experiments.Measure(w, opt)
		if err != nil {
			log.Fatal(err)
		}
	}

	show := func(n int) bool { return *table == 0 || *table == n }
	if show(1) {
		fmt.Println(experiments.RunTable1(ms).Format())
	}
	if show(2) {
		fmt.Println(experiments.FormatTable2(experiments.RunTable2(ms), peCounts))
	}
	if show(3) {
		fmt.Println(experiments.FormatTable3(experiments.RunTable3(ms)))
	}
	if show(4) {
		fmt.Println(experiments.FormatTable4(experiments.RunTable4(ms), peCounts))
	}
	if show(5) {
		fmt.Println(experiments.FormatTable5(experiments.RunTable5(ms)))
	}
	if show(6) {
		cfg := experiments.DefaultTable6Config()
		cfg.Family.Families = *families
		if *verbose {
			fmt.Printf("running sensitivity benchmark (%d families)...\n", cfg.Family.Families)
		}
		t6, err := experiments.RunTable6(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t6.Format())
	}
	if show(7) {
		fmt.Println(experiments.FormatTable7(experiments.RunTable7(ms)))
	}
	if show(8) {
		rows, err := experiments.RunFutureWork(ms)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatFutureWork(rows))
	}
}

func parsePEs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad PE count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
