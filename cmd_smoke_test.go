package seedblast_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"seedblast/internal/service"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, "./"+pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCmdSeedcmpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedcmp")
	out := run(t, bin, "-synthetic", "8", "-genome-len", "30000", "-plant", "3", "-top", "5")
	for _, want := range []string{"pairs scored", "E-value", "timing:"} {
		if !strings.Contains(out, want) {
			t.Errorf("seedcmp output missing %q:\n%s", want, out)
		}
	}
	// RASC engine with the gap operator.
	out = run(t, bin, "-synthetic", "6", "-genome-len", "20000", "-plant", "2",
		"-engine", "rasc", "-pes", "64", "-offload-gapped")
	if !strings.Contains(out, "gap operator") || !strings.Contains(out, "device:") {
		t.Errorf("rasc output missing device sections:\n%s", out)
	}
}

// TestExampleQuickstartSmoke runs the README's v2 quick-start example
// end to end: the facade's NewSearcher/Target/Search surface, driven
// exactly as a new user would.
func TestExampleQuickstartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "examples/quickstart")
	out := run(t, bin)
	for _, want := range []string{"planted 5 genes", "frame", "timing: index"} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdSeedcmpFormats pins the machine-readable match output: -format
// json must emit one decodable AlignmentJSON per line (the service's
// wire encoding), -format tsv a tab-separated table.
func TestCmdSeedcmpFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedcmp")
	out := run(t, bin, "-synthetic", "8", "-genome-len", "30000", "-plant", "3", "-format", "json")
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // summary lines go to stderr, but CombinedOutput interleaves
		}
		lines++
		var aj service.AlignmentJSON
		if err := json.Unmarshal([]byte(line), &aj); err != nil {
			t.Fatalf("line %q not AlignmentJSON: %v", line, err)
		}
		if aj.Query == "" || aj.Frame == "" || aj.NucStart == nil {
			t.Errorf("json match missing fields: %q", line)
		}
	}
	if lines == 0 {
		t.Fatalf("no NDJSON matches in output:\n%s", out)
	}

	out = run(t, bin, "-synthetic", "8", "-genome-len", "30000", "-plant", "3", "-format", "tsv")
	if !strings.Contains(out, "query\tframe\tscore") {
		t.Errorf("tsv output missing header:\n%s", out)
	}
}

func TestCmdTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/tables")
	out := run(t, bin, "-scale", "tiny", "-table", "3", "-pes", "32,64")
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "2 FPGAs") {
		t.Errorf("tables output wrong:\n%s", out)
	}
}

func TestCmdDatagenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/datagen")
	dir := t.TempDir()
	bank := filepath.Join(dir, "bank.fa")
	out := run(t, bin, "-kind", "proteins", "-n", "5", "-out", bank)
	if !strings.Contains(out, "wrote 5 proteins") {
		t.Errorf("datagen proteins output wrong:\n%s", out)
	}
	genome := filepath.Join(dir, "genome.fa")
	out = run(t, bin, "-kind", "genome", "-len", "20000", "-source", bank,
		"-plant", "2", "-out", genome)
	if !strings.Contains(out, "planted genes") {
		t.Errorf("datagen genome output wrong:\n%s", out)
	}
	// The generated files must feed back into seedcmp.
	seedcmp := buildTool(t, "cmd/seedcmp")
	out = run(t, seedcmp, "-proteins", bank, "-genome", genome, "-top", "3")
	if !strings.Contains(out, "matches:") {
		t.Errorf("seedcmp on generated files:\n%s", out)
	}
}

func TestCmdPsctraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/psctrace")
	out := run(t, bin, "-pes", "4", "-slot", "2", "-il0", "2", "-il1", "2", "-dense")
	for _, want := range []string{"load phase", "finishes", "output pe=", "total cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("psctrace output missing %q:\n%s", want, out)
		}
	}
}

// freeAddr reserves an ephemeral localhost address for a daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches a built daemon binary and tears it down with
// the test.
func startDaemon(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
}

// smokeJob is the shared submit→poll→fetch flow: a query with a
// strong self-match in the subject bank, driven through the reusable
// service client against whatever daemon base is (a worker or the
// cluster coordinator — same API).
func smokeJob(t *testing.T, base string) {
	t.Helper()
	cl := service.NewClient(base, service.ClientConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.WaitHealthy(ctx); err != nil {
		t.Fatal(err)
	}

	ev := 1.0
	id, err := cl.Submit(ctx, &service.JobRequestJSON{
		Query: []service.SequenceJSON{{ID: "q0", Seq: "MKVLITGASGFIGSHLVDRLMSKGYEVIGLDNFNDYYDVRLKEARLELL"}},
		Subject: []service.SequenceJSON{
			{ID: "s0", Seq: "MKVLITGASGFIGSHLVDRLMSKGYEVIGLDNFNDYYDVRLKEARLELL"},
			{ID: "s1", Seq: "AWQETNPNNSWGWSQERLAELAAEYDVDAIRPGRGLHLMSSRSHATTAW"},
			{ID: "s2", Seq: "GGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSG"},
		},
		Options: service.OptionsJSON{MaxEValue: &ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, id, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	aligns, err := cl.Alignments(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(aligns) == 0 {
		t.Fatal("no alignments for an exact self-match")
	}
	if aligns[0].Query != "q0" || aligns[0].Subject != "s0" {
		t.Errorf("top alignment %+v, want q0 vs s0", aligns[0])
	}

	// The streaming NDJSON fetch must carry the same records in the
	// same order — against workers and the coordinator alike.
	var streamed []service.AlignmentJSON
	for aj, err := range cl.StreamAlignments(ctx, id) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, aj)
	}
	if len(streamed) != len(aligns) {
		t.Fatalf("streamed %d alignments, array fetch %d", len(streamed), len(aligns))
	}
	// DeepEqual, not ==: AlignmentJSON's NucStart/NucEnd are pointers,
	// which == would compare by identity and always differ on genome
	// jobs even when the values agree.
	if !reflect.DeepEqual(streamed, aligns) {
		t.Errorf("streamed alignments differ from array fetch:\n%+v\nvs\n%+v", streamed, aligns)
	}
}

// fetchMetrics reads a daemon's Prometheus endpoint.
func fetchMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

// TestCmdSeedservdSmoke drives the comparison service end to end over
// real HTTP: start the daemon, submit a bank-vs-bank job through the
// reusable service client, poll it to completion, fetch the
// alignments, and read /metrics.
func TestCmdSeedservdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedservd")
	addr := freeAddr(t)
	startDaemon(t, bin, "-addr", addr, "-max-concurrent", "2")
	base := "http://" + addr

	smokeJob(t, base)

	metrics := fetchMetrics(t, base+"/metrics")
	for _, want := range []string{"seedservd_requests_completed_total 1", "seedservd_index_cache_misses_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestCmdSeeddbSmoke drives the persistence workflow end to end with
// the real binaries: seeddb build → inspect → verify, then seedservd
// -db serving the prebuilt index — the smoke job's subject bank is
// byte-identical to the built bank, so the request must be a cache hit
// with zero misses (step 1 never runs in the daemon).
func TestCmdSeeddbSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	dbBin := buildTool(t, "cmd/seeddb")
	servBin := buildTool(t, "cmd/seedservd")

	// The smoke job's subject bank, as FASTA.
	dir := t.TempDir()
	fasta := filepath.Join(dir, "subject.fasta")
	if err := os.WriteFile(fasta, []byte(
		">s0\nMKVLITGASGFIGSHLVDRLMSKGYEVIGLDNFNDYYDVRLKEARLELL\n"+
			">s1\nAWQETNPNNSWGWSQERLAELAAEYDVDAIRPGRGLHLMSSRSHATTAW\n"+
			">s2\nGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSGGSG\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := filepath.Join(dir, "subject.seeddb")
	run(t, dbBin, "build", "-proteins", fasta, "-out", db)

	out := run(t, dbBin, "inspect", db)
	for _, want := range []string{"fingerprint", "subset4", "3 sequences"} {
		if !strings.Contains(out, want) {
			t.Errorf("seeddb inspect output missing %q:\n%s", want, out)
		}
	}
	if out := run(t, dbBin, "verify", db); !strings.Contains(out, "ok") {
		t.Errorf("seeddb verify output:\n%s", out)
	}

	addr := freeAddr(t)
	startDaemon(t, servBin, "-addr", addr, "-db", db)
	base := "http://" + addr
	smokeJob(t, base)

	metrics := fetchMetrics(t, base+"/metrics")
	for _, want := range []string{
		"seedservd_index_cache_hits_total 1",
		"seedservd_index_cache_misses_total 0",
		"seedservd_requests_completed_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q (prebuilt index should pre-warm the cache):\n%s", want, metrics)
		}
	}
}

// TestCmdSeedclusterdSmoke boots two real seedservd workers plus the
// seedclusterd coordinator over them and runs the same scatter-gather
// job flow through the same client — the coordinator is
// indistinguishable from a worker at the API level — then checks the
// cluster metrics recorded per-worker volume traffic.
func TestCmdSeedclusterdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	workerBin := buildTool(t, "cmd/seedservd")
	clusterBin := buildTool(t, "cmd/seedclusterd")

	w1, w2 := freeAddr(t), freeAddr(t)
	startDaemon(t, workerBin, "-addr", w1, "-max-concurrent", "2")
	startDaemon(t, workerBin, "-addr", w2, "-max-concurrent", "2")

	caddr := freeAddr(t)
	startDaemon(t, clusterBin, "-addr", caddr,
		"-workers", fmt.Sprintf("http://%s,http://%s", w1, w2),
		"-strategy", "size", "-volumes", "3", "-wait-workers", "30s")
	base := "http://" + caddr

	smokeJob(t, base)

	metrics := fetchMetrics(t, base+"/cluster/metrics")
	for _, want := range []string{
		"seedclusterd_requests_completed_total 1",
		"seedclusterd_last_volumes 3",
		"seedclusterd_worker_volumes_total{worker=\"http://" + w1 + "\"}",
		"seedclusterd_worker_volumes_total{worker=\"http://" + w2 + "\"}",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/cluster/metrics missing %q:\n%s", want, metrics)
		}
	}
	// Three volumes over two healthy workers: both must have served at
	// least one (round-robin placement), with no retries burned.
	if strings.Contains(metrics, "worker_volumes_total{worker=\"http://"+w1+"\"} 0") ||
		strings.Contains(metrics, "worker_volumes_total{worker=\"http://"+w2+"\"} 0") {
		t.Errorf("a healthy worker served no volumes:\n%s", metrics)
	}
}
