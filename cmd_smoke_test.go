package seedblast_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, "./"+pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCmdSeedcmpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedcmp")
	out := run(t, bin, "-synthetic", "8", "-genome-len", "30000", "-plant", "3", "-top", "5")
	for _, want := range []string{"pairs scored", "E-value", "timing:"} {
		if !strings.Contains(out, want) {
			t.Errorf("seedcmp output missing %q:\n%s", want, out)
		}
	}
	// RASC engine with the gap operator.
	out = run(t, bin, "-synthetic", "6", "-genome-len", "20000", "-plant", "2",
		"-engine", "rasc", "-pes", "64", "-offload-gapped")
	if !strings.Contains(out, "gap operator") || !strings.Contains(out, "device:") {
		t.Errorf("rasc output missing device sections:\n%s", out)
	}
}

func TestCmdTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/tables")
	out := run(t, bin, "-scale", "tiny", "-table", "3", "-pes", "32,64")
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "2 FPGAs") {
		t.Errorf("tables output wrong:\n%s", out)
	}
}

func TestCmdDatagenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/datagen")
	dir := t.TempDir()
	bank := filepath.Join(dir, "bank.fa")
	out := run(t, bin, "-kind", "proteins", "-n", "5", "-out", bank)
	if !strings.Contains(out, "wrote 5 proteins") {
		t.Errorf("datagen proteins output wrong:\n%s", out)
	}
	genome := filepath.Join(dir, "genome.fa")
	out = run(t, bin, "-kind", "genome", "-len", "20000", "-source", bank,
		"-plant", "2", "-out", genome)
	if !strings.Contains(out, "planted genes") {
		t.Errorf("datagen genome output wrong:\n%s", out)
	}
	// The generated files must feed back into seedcmp.
	seedcmp := buildTool(t, "cmd/seedcmp")
	out = run(t, seedcmp, "-proteins", bank, "-genome", genome, "-top", "3")
	if !strings.Contains(out, "matches:") {
		t.Errorf("seedcmp on generated files:\n%s", out)
	}
}

func TestCmdPsctraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/psctrace")
	out := run(t, bin, "-pes", "4", "-slot", "2", "-il0", "2", "-il1", "2", "-dense")
	for _, want := range []string{"load phase", "finishes", "output pe=", "total cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("psctrace output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdSeedservdSmoke drives the comparison service end to end over
// real HTTP: start the daemon, submit a bank-vs-bank job, poll it to
// completion, fetch the alignments, and read /metrics.
func TestCmdSeedservdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedservd")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr, "-max-concurrent", "2")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	base := "http://" + addr

	// Wait for the server to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seedservd did not come up on %s: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// A query with a strong self-match in the subject bank.
	body := `{
	  "query":   [{"id": "q0", "seq": "MKVLITGASGFIGSHLVDRLMSKGYEVIGLDNFNDYYDVRLKEARLELL"}],
	  "subject": [{"id": "s0", "seq": "MKVLITGASGFIGSHLVDRLMSKGYEVIGLDNFNDYYDVRLKEARLELL"},
	              {"id": "s1", "seq": "AWQETNPNNSWGWSQERLAELAAEYDVDAIRPGRGLHLMSSRSHATTAW"}],
	  "options": {"maxEValue": 1}
	}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ ID, State string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("submit returned no job id")
	}

	// Fresh deadline: the startup wait above may have consumed most of
	// the first one on a loaded host.
	deadline = time.Now().Add(10 * time.Second)
	var state string
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string
			Error string
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		state = st.State
		if state == "done" {
			break
		}
		if state == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("job stuck in state %q", state)
	}

	resp, err = http.Get(base + "/v1/jobs/" + sub.ID + "/alignments")
	if err != nil {
		t.Fatal(err)
	}
	var aligns []struct {
		Query   string
		Subject string
		Score   int
		EValue  float64
	}
	if err := json.NewDecoder(resp.Body).Decode(&aligns); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(aligns) == 0 {
		t.Fatal("no alignments for an exact self-match")
	}
	if aligns[0].Query != "q0" || aligns[0].Subject != "s0" {
		t.Errorf("top alignment %+v, want q0 vs s0", aligns[0])
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"seedservd_requests_completed_total 1", "seedservd_index_cache_misses_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}
