package seedblast_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, "./"+pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCmdSeedcmpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedcmp")
	out := run(t, bin, "-synthetic", "8", "-genome-len", "30000", "-plant", "3", "-top", "5")
	for _, want := range []string{"pairs scored", "E-value", "timing:"} {
		if !strings.Contains(out, want) {
			t.Errorf("seedcmp output missing %q:\n%s", want, out)
		}
	}
	// RASC engine with the gap operator.
	out = run(t, bin, "-synthetic", "6", "-genome-len", "20000", "-plant", "2",
		"-engine", "rasc", "-pes", "64", "-offload-gapped")
	if !strings.Contains(out, "gap operator") || !strings.Contains(out, "device:") {
		t.Errorf("rasc output missing device sections:\n%s", out)
	}
}

func TestCmdTablesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/tables")
	out := run(t, bin, "-scale", "tiny", "-table", "3", "-pes", "32,64")
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "2 FPGAs") {
		t.Errorf("tables output wrong:\n%s", out)
	}
}

func TestCmdDatagenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/datagen")
	dir := t.TempDir()
	bank := filepath.Join(dir, "bank.fa")
	out := run(t, bin, "-kind", "proteins", "-n", "5", "-out", bank)
	if !strings.Contains(out, "wrote 5 proteins") {
		t.Errorf("datagen proteins output wrong:\n%s", out)
	}
	genome := filepath.Join(dir, "genome.fa")
	out = run(t, bin, "-kind", "genome", "-len", "20000", "-source", bank,
		"-plant", "2", "-out", genome)
	if !strings.Contains(out, "planted genes") {
		t.Errorf("datagen genome output wrong:\n%s", out)
	}
	// The generated files must feed back into seedcmp.
	seedcmp := buildTool(t, "cmd/seedcmp")
	out = run(t, seedcmp, "-proteins", bank, "-genome", genome, "-top", "3")
	if !strings.Contains(out, "matches:") {
		t.Errorf("seedcmp on generated files:\n%s", out)
	}
}

func TestCmdPsctraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/psctrace")
	out := run(t, bin, "-pes", "4", "-slot", "2", "-il0", "2", "-il1", "2", "-dense")
	for _, want := range []string{"load phase", "finishes", "output pe=", "total cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("psctrace output missing %q:\n%s", want, out)
		}
	}
}
