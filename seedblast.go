// Package seedblast is a Go reproduction of "Implementing Protein
// Seed-Based Comparison Algorithm on the SGI RASC-100 Platform"
// (Nguyen, Cornu, Lavenier — RAW/IPDPS 2009): a tblastn-class
// bank-vs-bank protein/genome comparison pipeline whose critical
// section (seed-pair ungapped extension) can execute either on a
// parallel CPU engine or on a cycle-level simulation of the paper's
// PSC operator on the SGI RASC-100 FPGA accelerator.
//
// The package is a facade over the internal packages. The primary
// entry point is the v2 search API (search.go): a Searcher built once
// from functional options, reusable indexed Targets for every
// comparison shape (protein bank, genome, DNA queries), and one
// Search call with streaming results. The v1 entry points (Compare,
// CompareGenome, …) remain as deprecated bit-identical adapters. The
// facade also exposes the workload generators the experiments use,
// FASTA I/O helpers and the sequential BLAST-style baseline. See
// DESIGN.md for the system inventory (including the v1→v2 migration
// table) and EXPERIMENTS.md for the paper-vs-measured record.
package seedblast

import (
	"context"
	"fmt"

	"seedblast/internal/alphabet"
	"seedblast/internal/bank"
	"seedblast/internal/blast"
	"seedblast/internal/core"
	"seedblast/internal/pipeline"
	"seedblast/internal/seed"
	"seedblast/internal/seqio"
	"seedblast/internal/translate"
	"seedblast/internal/ungapped"
)

// Core pipeline types, re-exported.
type (
	// Options parameterises the pipeline; start from DefaultOptions.
	Options = core.Options
	// RASCOptions configures the simulated accelerator.
	RASCOptions = core.RASCOptions
	// Result is a bank-vs-bank comparison outcome.
	Result = core.Result
	// GenomeResult is a protein-bank-vs-genome (tblastn) outcome.
	GenomeResult = core.GenomeResult
	// GenomeMatch is one alignment in genome coordinates.
	GenomeMatch = core.GenomeMatch
	// StepTimes records per-step durations.
	StepTimes = core.StepTimes
	// Engine selects where step 2 runs.
	Engine = core.Engine
	// Kernel selects the CPU step-2 inner-loop implementation (see
	// Options.Step2Kernel and WithStep2Kernel). Results are
	// bit-identical across kernels; only throughput differs.
	Kernel = ungapped.Kernel
	// Bank is an ordered set of protein sequences.
	Bank = bank.Bank
	// PipelineConfig tunes the streaming shard engine (shard size,
	// shards in flight, per-stage concurrency); see Options.Pipeline.
	PipelineConfig = pipeline.Config
	// PipelineMetrics is the streaming engine's per-run accounting,
	// reported in Result.Pipeline.
	PipelineMetrics = pipeline.Metrics
)

// Engine values.
const (
	// EngineCPU runs step 2 on the parallel software engine.
	EngineCPU = core.EngineCPU
	// EngineRASC runs step 2 on the simulated RASC-100 accelerator.
	EngineRASC = core.EngineRASC
	// EngineMulti fans shards out across the CPU and RASC backends —
	// the paper's multicore-plus-FPGA dispatch, answered greedily.
	EngineMulti = core.EngineMulti
)

// Kernel values.
const (
	// KernelAuto (the zero value) picks the blocked kernel whenever
	// the matrix and window length fit its arithmetic bounds, falling
	// back to scalar otherwise.
	KernelAuto = ungapped.KernelAuto
	// KernelScalar forces the scalar reference inner loop.
	KernelScalar = ungapped.KernelScalar
	// KernelBlocked requests the blocked lane-parallel inner loop; it
	// still falls back to scalar when the workload's score bound does
	// not fit its int16 lanes.
	KernelBlocked = ungapped.KernelBlocked
)

// ParseKernel parses "auto", "scalar" or "blocked" (the CLI/service
// spelling) into a Kernel.
func ParseKernel(s string) (Kernel, error) { return ungapped.ParseKernel(s) }

// DefaultOptions returns the paper's defaults: W=4 subset seed, N=14,
// BLOSUM62, ungapped threshold 38, gapped stage at E ≤ 10⁻³.
func DefaultOptions() Options { return core.DefaultOptions() }

// Compare runs the three-step pipeline on two protein banks through
// the streaming shard engine (batch-identical with the zero
// Options.Pipeline).
//
// Deprecated: use NewSearcher and Search with two ProteinTargets; the
// adapter is pinned bit-identical (matches and order) by equivalence
// tests. See DESIGN.md's v1→v2 migration table.
func Compare(b0, b1 *Bank, opt Options) (*Result, error) {
	return core.Compare(b0, b1, opt)
}

// CompareContext is Compare with cancellation: cancelling ctx shuts
// the engine's stages down promptly and returns ctx's error.
//
// Deprecated: use NewSearcher and Search with two ProteinTargets.
func CompareContext(ctx context.Context, b0, b1 *Bank, opt Options) (*Result, error) {
	return core.CompareContext(ctx, b0, b1, opt)
}

// CompareGenome runs the tblastn-style workflow: proteins against a
// six-frame-translated genome, with matches in genome coordinates.
//
// Deprecated: use NewSearcher and Search against a GenomeTarget, which
// owns the six-frame translation, its reusable index and the
// genome-coordinate mapping (Match.Subject).
func CompareGenome(proteins *Bank, genome []byte, opt Options) (*GenomeResult, error) {
	return core.CompareGenome(proteins, genome, opt)
}

// CompareGenomeContext is CompareGenome with cancellation.
//
// Deprecated: use NewSearcher and Search against a GenomeTarget.
func CompareGenomeContext(ctx context.Context, proteins *Bank, genome []byte, opt Options) (*GenomeResult, error) {
	return core.CompareGenomeContext(ctx, proteins, genome, opt)
}

// BLAST-family modes beyond tblastn (the paper's conclusion: the PSC
// design "can be directly reused for implementing blastp, blastx, and
// tblastx").
type (
	// DNAQueryResult is the outcome of CompareDNAQueries (blastx).
	DNAQueryResult = core.DNAQueryResult
	// DNAQueryMatch is one blastx alignment.
	DNAQueryMatch = core.DNAQueryMatch
	// GenomePairResult is the outcome of CompareGenomes (tblastx).
	GenomePairResult = core.GenomePairResult
	// GenomePairMatch is one tblastx alignment.
	GenomePairMatch = core.GenomePairMatch
)

// CompareDNAQueries implements blastx: DNA queries are six-frame
// translated and searched against a protein bank.
//
// Deprecated: use NewSearcher and Search with a DNATarget query side
// against a ProteinTarget; Match.Query carries the frame and
// nucleotide coordinates.
func CompareDNAQueries(queries [][]byte, proteins *Bank, opt Options) (*DNAQueryResult, error) {
	return core.CompareDNAQueries(queries, proteins, opt)
}

// CompareGenomes implements tblastx: both nucleotide sequences are
// six-frame translated and compared protein-wise.
//
// Deprecated: use NewSearcher and Search with two GenomeTargets.
func CompareGenomes(genome0, genome1 []byte, opt Options) (*GenomePairResult, error) {
	return core.CompareGenomes(genome0, genome1, opt)
}

// Workload generation, re-exported for examples and experiments.
type (
	// ProteinConfig parameterises GenerateProteins.
	ProteinConfig = bank.ProteinConfig
	// GenomeConfig parameterises GenerateGenome.
	GenomeConfig = bank.GenomeConfig
	// PlantedGene records where a gene was planted in a synthetic genome.
	PlantedGene = bank.PlantedGene
	// FamilyConfig parameterises GenerateFamilyBenchmark.
	FamilyConfig = bank.FamilyConfig
	// FamilyBenchmark is the sensitivity/selectivity workload.
	FamilyBenchmark = bank.FamilyBenchmark
)

// GenerateProteins creates a synthetic protein bank (Robinson
// background composition), standing in for the paper's NR subsets.
func GenerateProteins(cfg ProteinConfig) *Bank { return bank.GenerateProteins(cfg) }

// GenerateGenome creates a synthetic genome with planted mutated
// genes, standing in for the paper's Human chromosome 1.
func GenerateGenome(cfg GenomeConfig) ([]byte, []PlantedGene, error) {
	return bank.GenerateGenome(cfg)
}

// GenerateFamilyBenchmark creates the family workload behind the
// paper's ROC50/AP evaluation (Table 6).
func GenerateFamilyBenchmark(cfg FamilyConfig) (*FamilyBenchmark, error) {
	return bank.GenerateFamilyBenchmark(cfg)
}

// NewBank returns an empty protein bank.
func NewBank(name string) *Bank { return bank.New(name) }

// LoadProteinFASTA reads a protein bank from a FASTA file.
func LoadProteinFASTA(name, path string) (*Bank, error) {
	return bank.LoadFASTA(name, path)
}

// LoadGenomeFASTA reads a genome from a FASTA file, concatenating all
// records into one encoded nucleotide sequence.
func LoadGenomeFASTA(path string) ([]byte, error) {
	recs, err := seqio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var genome []byte
	for _, r := range recs {
		dna, err := alphabet.EncodeDNA(string(r.Seq))
		if err != nil {
			return nil, fmt.Errorf("seedblast: record %s: %w", r.ID, err)
		}
		genome = append(genome, dna...)
	}
	return genome, nil
}

// WriteProteinFASTA writes a protein bank to a FASTA file.
func WriteProteinFASTA(path string, b *Bank) error {
	return seqio.WriteFile(path, b.Records()...)
}

// Baseline, re-exported.
type (
	// BaselineConfig holds the sequential BLAST-style baseline's
	// parameters.
	BaselineConfig = blast.Config
	// BaselineMatch is one baseline alignment.
	BaselineMatch = blast.Match
	// BaselineGenomeMatch is a baseline alignment in genome coordinates.
	BaselineGenomeMatch = blast.GenomeMatch
)

// DefaultBaselineConfig returns tblastn-like defaults.
func DefaultBaselineConfig() BaselineConfig { return blast.DefaultConfig() }

// Baseline runs the sequential BLAST-style search over protein banks.
func Baseline(queries, subjects *Bank, cfg BaselineConfig) ([]BaselineMatch, error) {
	return blast.Search(queries, subjects, cfg)
}

// BaselineGenome runs the baseline tblastn over a genome.
func BaselineGenome(queries *Bank, genome []byte, cfg BaselineConfig) ([]BaselineGenomeMatch, error) {
	return blast.SearchGenome(queries, genome, cfg)
}

// GeneticCode is a codon translation table; see Options.GeneticCode.
type GeneticCode = translate.Code

// GeneticCodeByName resolves a genetic code by name or NCBI table
// number: "standard"/"1", "bacterial"/"11",
// "vertebrate-mitochondrial"/"mito"/"2".
func GeneticCodeByName(name string) (*GeneticCode, error) {
	return translate.CodeByName(name)
}

// SeedModel maps fixed-width residue windows to index keys; see
// Options.Seed.
type SeedModel = seed.Model

// ExactSeed returns the classic BLAST-style exact word seed of width w
// (key space 20^w).
func ExactSeed(w int) SeedModel { return seed.Exact(w) }

// SubsetSeed builds a subset seed (Peterlongo et al.) from per-position
// partition specs. Each spec is either the keyword "exact" (identity),
// "murphy10" (the Murphy-Wallqvist-Levy 10-class reduction), "any"
// (one class: position is a don't-care), or an explicit comma-separated
// partition such as "LVIM,C,A,G,ST,P,FYW,EDNQ,KR,H".
func SubsetSeed(name string, specs ...string) (SeedModel, error) {
	parts := make([]seed.Partition, len(specs))
	for i, s := range specs {
		switch s {
		case "exact":
			parts[i] = seed.Identity()
		case "murphy10":
			parts[i] = seed.Murphy10()
		case "any":
			p, err := seed.NewPartition("ARNDCQEGHILKMFPSTWYV")
			if err != nil {
				return nil, err
			}
			p.Label = "any"
			parts[i] = p
		default:
			p, err := seed.NewPartition(s)
			if err != nil {
				return nil, err
			}
			parts[i] = p
		}
	}
	return seed.NewSubset(name, parts...)
}

// EncodeProtein converts amino-acid letters to the internal encoding.
func EncodeProtein(s string) ([]byte, error) { return alphabet.EncodeProtein(s) }

// EncodeDNA converts nucleotide letters to the internal encoding.
func EncodeDNA(s string) ([]byte, error) { return alphabet.EncodeDNA(s) }

// DecodeProtein converts encoded residues back to letters.
func DecodeProtein(codes []byte) string { return alphabet.DecodeProtein(codes) }
