//lint:file-ignore SA1019 the deprecated v1 entry points stay covered until removal

package seedblast_test

import (
	"os"
	"path/filepath"
	"testing"

	"seedblast"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{
		N: 8, MeanLen: 100, Seed: 1,
	})
	genome, genes, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length: 40_000, Source: proteins, PlantCount: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(genes) == 0 {
		t.Fatal("no planted genes")
	}
	res, err := seedblast.CompareGenome(proteins, genome, seedblast.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches through the public API")
	}
}

func TestPublicAPIRASCEngine(t *testing.T) {
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{
		N: 5, MeanLen: 80, Seed: 3,
	})
	genome, _, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length: 20_000, Source: proteins, PlantCount: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := seedblast.DefaultOptions()
	opt.Engine = seedblast.EngineRASC
	opt.RASC.NumPEs = 64
	res, err := seedblast.CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Device == nil {
		t.Fatal("no device report from RASC engine")
	}
}

func TestPublicAPIBaseline(t *testing.T) {
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{
		N: 4, MeanLen: 90, Seed: 5,
	})
	genome, _, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length: 20_000, Source: proteins, PlantCount: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := seedblast.BaselineGenome(proteins, genome, seedblast.DefaultBaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("baseline found nothing")
	}
}

func TestPublicAPIFASTARoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bank.fa")
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{N: 3, MeanLen: 50, Seed: 7})
	if err := seedblast.WriteProteinFASTA(path, proteins); err != nil {
		t.Fatal(err)
	}
	back, err := seedblast.LoadProteinFASTA("back", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != proteins.Len() {
		t.Fatalf("round trip %d sequences, want %d", back.Len(), proteins.Len())
	}
	for i := 0; i < back.Len(); i++ {
		if string(back.Seq(i)) != string(proteins.Seq(i)) {
			t.Fatal("sequences differ after round trip")
		}
	}
}

func TestPublicAPIEncoding(t *testing.T) {
	codes, err := seedblast.EncodeProtein("MKVLila")
	if err != nil {
		t.Fatal(err)
	}
	if seedblast.DecodeProtein(codes) != "MKVLILA" {
		t.Error("encode/decode mismatch")
	}
	if _, err := seedblast.EncodeDNA("ACGTN"); err != nil {
		t.Error(err)
	}
	if _, err := seedblast.EncodeDNA("XYZ!"); err == nil {
		t.Error("invalid DNA accepted")
	}
}

func TestPublicAPIFamilyBenchmark(t *testing.T) {
	fb, err := seedblast.GenerateFamilyBenchmark(seedblast.FamilyConfig{
		Families: 3, MembersPerFamily: 2, MemberLen: 60, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb.Queries.Len() != 3 || len(fb.Members) != 6 {
		t.Fatalf("benchmark shape wrong: %d queries, %d members",
			fb.Queries.Len(), len(fb.Members))
	}
}

func TestPublicAPICompareBlastp(t *testing.T) {
	// blastp mode: protein bank vs protein bank.
	b0 := seedblast.GenerateProteins(seedblast.ProteinConfig{N: 4, MeanLen: 100, Seed: 9})
	b1 := seedblast.NewBank("subjects")
	// Subject 0 is a homolog of query 2.
	src, err := seedblast.EncodeProtein(seedblast.DecodeProtein(b0.Seq(2)))
	if err != nil {
		t.Fatal(err)
	}
	b1.Add("homolog", src)
	res, err := seedblast.Compare(b0, b1, seedblast.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) == 0 {
		t.Fatal("blastp found nothing")
	}
	if res.Alignments[0].Seq0 != 2 {
		t.Errorf("top alignment query %d, want 2", res.Alignments[0].Seq0)
	}
}

func TestPublicAPIBlastxAndTblastx(t *testing.T) {
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{N: 4, MeanLen: 90, Seed: 10})
	genome, _, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length: 15_000, Source: proteins, PlantCount: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// blastx: the genome as one DNA query against the protein bank.
	dres, err := seedblast.CompareDNAQueries([][]byte{genome}, proteins, seedblast.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Matches) == 0 {
		t.Error("blastx found nothing")
	}
	// tblastx: the genome against itself must at least find its own genes.
	gres, err := seedblast.CompareGenomes(genome, genome, seedblast.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Matches) == 0 {
		t.Error("tblastx found nothing")
	}
}

func TestPublicAPILoadGenomeFASTA(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "genome.fa")
	if err := os.WriteFile(path, []byte(">chr1 part one\nACGT\n>chr2\nTTAA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	genome, err := seedblast.LoadGenomeFASTA(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(genome) != 8 {
		t.Fatalf("concatenated genome length %d, want 8", len(genome))
	}
	// Invalid letters must error.
	bad := filepath.Join(dir, "bad.fa")
	if err := os.WriteFile(bad, []byte(">x\nAC!T\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := seedblast.LoadGenomeFASTA(bad); err == nil {
		t.Error("invalid genome accepted")
	}
}

func TestPublicAPIBaselineProteins(t *testing.T) {
	b0 := seedblast.GenerateProteins(seedblast.ProteinConfig{N: 2, MeanLen: 150, Seed: 12})
	b1 := seedblast.NewBank("s")
	b1.Add("copy", b0.Seq(0))
	ms, err := seedblast.Baseline(b0, b1, seedblast.DefaultBaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].Query != 0 {
		t.Errorf("baseline missed the identical pair: %+v", ms)
	}
}

func TestPublicAPISeedConstructors(t *testing.T) {
	if seedblast.ExactSeed(3).KeySpace() != 8000 {
		t.Error("ExactSeed keyspace wrong")
	}
	m, err := seedblast.SubsetSeed("mix", "exact", "murphy10", "any", "LVIM,C,A,G,ST,P,FYW,EDNQ,KR,H")
	if err != nil {
		t.Fatal(err)
	}
	if m.Width() != 4 || m.KeySpace() != 20*10*1*10 {
		t.Errorf("SubsetSeed shape wrong: w=%d keys=%d", m.Width(), m.KeySpace())
	}
	if _, err := seedblast.SubsetSeed("bad", "notaspec!"); err == nil {
		t.Error("invalid spec accepted")
	}
	// A custom seed must be usable end to end.
	opt := seedblast.DefaultOptions()
	opt.Seed = m
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{N: 3, MeanLen: 80, Seed: 13})
	genome, _, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length: 10_000, Source: proteins, PlantCount: 1, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedblast.CompareGenome(proteins, genome, opt); err != nil {
		t.Fatal(err)
	}
}
