package seedblast_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestSeedlintSmoke builds cmd/seedlint and runs it over the whole
// repository: the tree must stay warning-free (exit 0, no output), so
// the lint job in CI never breaks on a clean checkout.
func TestSeedlintSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedlint")

	out := run(t, bin, "./...")
	if strings.TrimSpace(out) != "" {
		t.Errorf("seedlint ./... reported findings on a clean tree:\n%s", out)
	}

	// -list enumerates the analyzers; pin the full set so dropping one
	// from the registry is caught.
	out = run(t, bin, "-list")
	for _, name := range []string{
		"mmapclose", "ctxselect", "kernelparity", "optclone", "errclose",
		"spanend", "mapdet", "metricname", "optplumb", "directive",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("seedlint -list missing analyzer %q:\n%s", name, out)
		}
	}

	// The vet-tool handshake: go vet probes -V=full before anything else.
	vOut, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("seedlint -V=full: %v\n%s", err, vOut)
	}
	if !strings.HasPrefix(string(vOut), "seedlint version ") || !strings.Contains(string(vOut), "buildID=") {
		t.Errorf("seedlint -V=full output %q is not a vettool version line", vOut)
	}
}

// TestSeedlintJSONGolden pins the -json NDJSON record shape against a
// dedicated fixture package with one per-package finding (mmapclose)
// and one cross-package finding (mapdet).
func TestSeedlintJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedlint")

	out, err := exec.Command(bin, "-json", "./cmd/seedlint/testdata/jsongold").CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("seedlint -json on a dirty fixture: want exit 1, got %v\n%s", err, out)
	}
	want, err := os.ReadFile("cmd/seedlint/testdata/jsongold.golden")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(want) {
		t.Errorf("-json output drifted from golden file:\n got: %s\nwant: %s", out, want)
	}
	// Every line must round-trip as JSON with the documented fields.
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var rec struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("bad NDJSON line %q: %v", line, err)
			continue
		}
		if rec.File == "" || rec.Line == 0 || rec.Analyzer == "" || rec.Message == "" {
			t.Errorf("NDJSON record missing fields: %q", line)
		}
	}
}
