package seedblast_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestSeedlintSmoke builds cmd/seedlint and runs it over the whole
// repository: the tree must stay warning-free (exit 0, no output), so
// the lint job in CI never breaks on a clean checkout.
func TestSeedlintSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests in -short mode")
	}
	bin := buildTool(t, "cmd/seedlint")

	out := run(t, bin, "./...")
	if strings.TrimSpace(out) != "" {
		t.Errorf("seedlint ./... reported findings on a clean tree:\n%s", out)
	}

	// -list enumerates the analyzers; pin the full set so dropping one
	// from the registry is caught.
	out = run(t, bin, "-list")
	for _, name := range []string{"mmapclose", "ctxselect", "kernelparity", "optclone", "errclose"} {
		if !strings.Contains(out, name) {
			t.Errorf("seedlint -list missing analyzer %q:\n%s", name, out)
		}
	}

	// The vet-tool handshake: go vet probes -V=full before anything else.
	vOut, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("seedlint -V=full: %v\n%s", err, vOut)
	}
	if !strings.HasPrefix(string(vOut), "seedlint version ") || !strings.Contains(string(vOut), "buildID=") {
		t.Errorf("seedlint -V=full output %q is not a vettool version line", vOut)
	}
}
