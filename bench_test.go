// Benchmarks regenerating the paper's tables (1-7) and probing the
// design choices DESIGN.md calls out. Table benches report the same
// headline quantities the paper's tables do via b.ReportMetric
// (speedups, step shares, KaaMnt/s); run with
//
//	go test -bench=Table -benchmem
//
// Absolute times are host-dependent; the reproduced quantity is the
// shape (who wins, by what factor, where it saturates).
package seedblast_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seedblast/internal/align"
	"seedblast/internal/bank"
	"seedblast/internal/blast"
	"seedblast/internal/core"
	"seedblast/internal/experiments"
	"seedblast/internal/gapped"
	"seedblast/internal/hwsim"
	"seedblast/internal/index"
	"seedblast/internal/matrix"
	"seedblast/internal/pipeline"
	"seedblast/internal/seed"
	"seedblast/internal/ungapped"
)

// testingClock returns a monotonic timestamp in seconds, used to carve
// step times out of a single benchmark iteration.
func testingClock() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// ---- shared workload -------------------------------------------------

var (
	wlOnce sync.Once
	wl     *experiments.Workload
	wlIxG  *index.Index // genome-side index, shared by all banks
	wlIxB  []*index.Index
	wlErr  error
)

func workload(b *testing.B) (*experiments.Workload, *index.Index, []*index.Index) {
	b.Helper()
	wlOnce.Do(func() {
		wl, wlErr = experiments.NewWorkload(experiments.Tiny())
		if wlErr != nil {
			return
		}
		s := wl.Scale
		wlIxG, wlErr = index.Build(wl.Frames, s.SeedModel, s.N)
		if wlErr != nil {
			return
		}
		for _, bk := range wl.Banks {
			ix, err := index.Build(bk, s.SeedModel, s.N)
			if err != nil {
				wlErr = err
				return
			}
			wlIxB = append(wlIxB, ix)
		}
	})
	if wlErr != nil {
		b.Fatal(wlErr)
	}
	return wl, wlIxG, wlIxB
}

func step2Seq(b *testing.B, ixB *index.Index, threshold int) *ungapped.Result {
	b.Helper()
	res, err := ungapped.Run(ixB, wlIxG, ungapped.Config{
		Matrix: matrix.BLOSUM62, Threshold: threshold, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func deviceEstimate(b *testing.B, ixB *index.Index, pes, fpgas, threshold, records int) *hwsim.Step2Report {
	b.Helper()
	psc := hwsim.DefaultPSC(matrix.BLOSUM62, ixB.SubLen(), threshold)
	psc.NumPEs = pes
	cfg := hwsim.DefaultDevice(psc)
	cfg.NumFPGAs = fpgas
	dev, err := hwsim.NewDevice(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := dev.EstimateStep2(ixB, wlIxG, records)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// ---- Table 1: software profile ---------------------------------------

func BenchmarkTable1StepBreakdown(b *testing.B) {
	w, _, ixs := workload(b)
	bk := w.Banks[len(w.Banks)-1]
	ixB := ixs[len(ixs)-1]
	var fr [3]float64
	for i := 0; i < b.N; i++ {
		t0 := testingClock()
		ix2, err := index.Build(bk, w.Scale.SeedModel, w.Scale.N)
		if err != nil {
			b.Fatal(err)
		}
		_ = ix2
		t1 := testingClock()
		res := step2Seq(b, ixB, w.Scale.Threshold)
		t2 := testingClock()
		if _, err := gapped.Run(bk, w.Frames, res.Hits, seqGapped()); err != nil {
			b.Fatal(err)
		}
		t3 := testingClock()
		tot := t3 - t0
		fr = [3]float64{(t1 - t0) / tot, (t2 - t1) / tot, (t3 - t2) / tot}
	}
	b.ReportMetric(100*fr[0], "step1_%")
	b.ReportMetric(100*fr[1], "step2_%")
	b.ReportMetric(100*fr[2], "step3_%")
}

func seqGapped() gapped.Config {
	cfg := gapped.DefaultConfig()
	cfg.Workers = 1
	return cfg
}

// ---- Table 2: overall vs baseline ------------------------------------

func BenchmarkTable2Overall(b *testing.B) {
	w, _, ixs := workload(b)
	for bi, bk := range w.Banks {
		bi, bk := bi, bk
		b.Run(fmt.Sprintf("bank=%d", bk.Len()), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				tb0 := testingClock()
				if _, err := blast.SearchGenome(bk, w.Genome, blast.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
				blastSec := testingClock() - tb0

				// RASC pipeline time = measured host steps 1 and 3 plus
				// the simulated device step 2.
				res := step2Seq(b, ixs[bi], w.Scale.Threshold)
				rep := deviceEstimate(b, ixs[bi], 192, 1, w.Scale.Threshold, len(res.Hits))
				rascSec := rep.Seconds + hostOverheadSec(b, w, bk, ixs[bi], res)
				speedup = blastSec / rascSec
			}
			b.ReportMetric(speedup, "speedup_192PE")
		})
	}
}

// hostOverheadSec measures steps 1 and 3 (the parts that stay on the
// host when step 2 is offloaded).
func hostOverheadSec(b *testing.B, w *experiments.Workload, bk *bank.Bank,
	ixB *index.Index, res *ungapped.Result) float64 {
	b.Helper()
	t0 := testingClock()
	if _, err := index.Build(bk, w.Scale.SeedModel, w.Scale.N); err != nil {
		b.Fatal(err)
	}
	if _, err := gapped.Run(bk, w.Frames, res.Hits, seqGapped()); err != nil {
		b.Fatal(err)
	}
	return testingClock() - t0
}

// ---- Table 3: 1 vs 2 FPGAs -------------------------------------------

func BenchmarkTable3TwoFPGAs(b *testing.B) {
	w, _, ixs := workload(b)
	raised := w.Scale.Threshold * 2
	for bi, bk := range w.Banks {
		bi := bi
		b.Run(fmt.Sprintf("bank=%d", bk.Len()), func(b *testing.B) {
			res := step2Seq(b, ixs[bi], w.Scale.Threshold)
			records := 0
			for _, h := range res.Hits {
				if int(h.Score) >= raised {
					records++
				}
			}
			b.ResetTimer()
			var speedup float64
			for i := 0; i < b.N; i++ {
				one := deviceEstimate(b, ixs[bi], 192, 1, w.Scale.Threshold, records)
				two := deviceEstimate(b, ixs[bi], 192, 2, w.Scale.Threshold, records)
				speedup = one.Seconds / two.Seconds
			}
			b.ReportMetric(speedup, "speedup_2FPGA")
		})
	}
}

// ---- Table 4: step 2 only ---------------------------------------------

func BenchmarkTable4Step2(b *testing.B) {
	w, _, ixs := workload(b)
	for bi, bk := range w.Banks {
		for _, pes := range []int{64, 128, 192} {
			bi, pes := bi, pes
			b.Run(fmt.Sprintf("bank=%d/pes=%d", bk.Len(), pes), func(b *testing.B) {
				var speedup float64
				for i := 0; i < b.N; i++ {
					t0 := testingClock()
					res := step2Seq(b, ixs[bi], w.Scale.Threshold)
					seqSec := testingClock() - t0
					rep := deviceEstimate(b, ixs[bi], pes, 1, w.Scale.Threshold, len(res.Hits))
					speedup = seqSec / rep.Seconds
				}
				b.ReportMetric(speedup, "speedup")
			})
		}
	}
}

// ---- Table 5: throughput ----------------------------------------------

func BenchmarkTable5Throughput(b *testing.B) {
	w, _, ixs := workload(b)
	bi := len(w.Banks) - 1
	bk := w.Banks[bi]
	var kaamnt float64
	for i := 0; i < b.N; i++ {
		res := step2Seq(b, ixs[bi], w.Scale.Threshold)
		host := hostOverheadSec(b, w, bk, ixs[bi], res)
		rep := deviceEstimate(b, ixs[bi], 192, 1, w.Scale.Threshold, len(res.Hits))
		total := host + rep.Seconds
		kaa := float64(bk.TotalResidues()) / 1e3
		mnt := float64(len(w.Genome)) / 1e6
		kaamnt = kaa * mnt / total
	}
	b.ReportMetric(kaamnt, "KaaMnt/s")
}

// ---- Table 6: sensitivity (quality, not time) --------------------------

func BenchmarkTable6Sensitivity(b *testing.B) {
	cfg := experiments.DefaultTable6Config()
	cfg.Family.Families = 6
	cfg.Family.DecoyGenes = 30
	var res *experiments.Table6
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTable6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RASCROC50, "roc50_rasc")
	b.ReportMetric(res.BlastROC50, "roc50_baseline")
	b.ReportMetric(res.RASCAPMean, "ap_rasc")
	b.ReportMetric(res.BlastAPMean, "ap_baseline")
}

// ---- Table 7: RASC profile ---------------------------------------------

func BenchmarkTable7RASCBreakdown(b *testing.B) {
	w, _, ixs := workload(b)
	bi := len(w.Banks) - 1
	bk := w.Banks[bi]
	var fr [3]float64
	for i := 0; i < b.N; i++ {
		t0 := testingClock()
		if _, err := index.Build(bk, w.Scale.SeedModel, w.Scale.N); err != nil {
			b.Fatal(err)
		}
		t1 := testingClock()
		res := step2Seq(b, ixs[bi], w.Scale.Threshold) // hits needed for step 3
		rep := deviceEstimate(b, ixs[bi], 192, 1, w.Scale.Threshold, len(res.Hits))
		t2 := testingClock()
		if _, err := gapped.Run(bk, w.Frames, res.Hits, seqGapped()); err != nil {
			b.Fatal(err)
		}
		t3 := testingClock()
		_ = t2
		step1 := t1 - t0
		step2 := rep.Seconds // simulated device time replaces host step 2
		step3 := t3 - t2
		tot := step1 + step2 + step3
		fr = [3]float64{step1 / tot, step2 / tot, step3 / tot}
	}
	b.ReportMetric(100*fr[0], "step1_%")
	b.ReportMetric(100*fr[1], "step2_%")
	b.ReportMetric(100*fr[2], "step3_%")
}

// ---- ablations ---------------------------------------------------------

// BenchmarkAblationSeedModel probes the index seed design: exact words
// vs the default subset seed vs the coarse Murphy reduction (key-space
// size vs bucket occupancy trade-off).
func BenchmarkAblationSeedModel(b *testing.B) {
	w, _, _ := workload(b)
	bk := w.Banks[len(w.Banks)-1]
	models := map[string]seed.Model{
		"exact4":    seed.Exact(4),
		"subset4":   seed.Default(),
		"murphy-1k": w.Scale.SeedModel,
	}
	for name, model := range models {
		name, model := name, model
		b.Run(name, func(b *testing.B) {
			ixB, err := index.Build(bk, model, w.Scale.N)
			if err != nil {
				b.Fatal(err)
			}
			ixG, err := index.Build(w.Frames, model, w.Scale.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var hits int
			var pairs int64
			for i := 0; i < b.N; i++ {
				res, err := ungapped.Run(ixB, ixG, ungapped.Config{
					Matrix: matrix.BLOSUM62, Threshold: w.Scale.Threshold, Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				hits = len(res.Hits)
				pairs = res.Pairs
			}
			b.ReportMetric(float64(pairs), "pairs")
			b.ReportMetric(float64(hits), "hits")
		})
	}
}

// BenchmarkAblationNeighborhood sweeps the window extension N: longer
// windows cost more PE cycles per pair but filter more sharply.
func BenchmarkAblationNeighborhood(b *testing.B) {
	w, _, _ := workload(b)
	bk := w.Banks[len(w.Banks)-1]
	for _, n := range []int{8, 14, 20} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			ixB, err := index.Build(bk, w.Scale.SeedModel, n)
			if err != nil {
				b.Fatal(err)
			}
			ixG, err := index.Build(w.Frames, w.Scale.SeedModel, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var hits int
			for i := 0; i < b.N; i++ {
				res, err := ungapped.Run(ixB, ixG, ungapped.Config{
					Matrix: matrix.BLOSUM62, Threshold: w.Scale.Threshold, Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				hits = len(res.Hits)
			}
			b.ReportMetric(float64(hits), "hits")
		})
	}
}

// BenchmarkAblationThreshold sweeps the ungapped threshold — the
// paper's Table 3 mitigation trades recall for result traffic.
func BenchmarkAblationThreshold(b *testing.B) {
	_, _, ixs := workload(b)
	ixB := ixs[len(ixs)-1]
	for _, thr := range []int{25, 38, 50, 76} {
		thr := thr
		b.Run(fmt.Sprintf("T=%d", thr), func(b *testing.B) {
			var hits int
			for i := 0; i < b.N; i++ {
				res := step2Seq(b, ixB, thr)
				hits = len(res.Hits)
			}
			b.ReportMetric(float64(hits), "records")
		})
	}
}

// BenchmarkAblationSlotSize probes the PSC pipeline structure: smaller
// slots add register barriers (latency), larger slots lengthen the
// combinational paths the paper's barriers exist to avoid. The cycle
// model only sees the latency side.
func BenchmarkAblationSlotSize(b *testing.B) {
	rng := bank.NewRNG(99)
	const subLen = 32
	il0 := make([][]byte, 192)
	for i := range il0 {
		il0[i] = bank.RandomProtein(rng, subLen)
	}
	il1 := make([]byte, 256*subLen)
	copy(il1, bank.RandomProtein(rng, len(il1)))
	for _, slot := range []int{4, 8, 16, 32} {
		slot := slot
		b.Run(fmt.Sprintf("slot=%d", slot), func(b *testing.B) {
			cfg := hwsim.PSCConfig{
				NumPEs: 192, SlotSize: slot, FIFODepth: 64,
				SubLen: subLen, Threshold: 1000, Matrix: matrix.BLOSUM62,
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				op, err := hwsim.NewOperator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := op.LoadIL0(il0); err != nil {
					b.Fatal(err)
				}
				if _, err := op.StreamIL1(il1, 256); err != nil {
					b.Fatal(err)
				}
				cycles = op.Cycles()
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// ---- microbenchmarks of the primitives ---------------------------------

func BenchmarkWindowScore32(b *testing.B) {
	rng := bank.NewRNG(7)
	w0 := bank.RandomProtein(rng, 32)
	w1 := bank.RandomProtein(rng, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.WindowScore(w0, w1, matrix.BLOSUM62)
	}
	b.SetBytes(32)
}

func BenchmarkBandedAlign(b *testing.B) {
	rng := bank.NewRNG(8)
	q := bank.RandomProtein(rng, 330)
	s := bank.MutateProtein(rng, q, 0.3)
	al := align.NewAligner(matrix.BLOSUM62, align.DefaultGaps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.LocalBanded(q, s, 0, 16)
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	w, _, _ := workload(b)
	bk := w.Banks[len(w.Banks)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := index.Build(bk, w.Scale.SeedModel, w.Scale.N); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(bk.TotalResidues()))
}

func BenchmarkPSCMicroEngine(b *testing.B) {
	rng := bank.NewRNG(9)
	const subLen = 32
	il0 := make([][]byte, 64)
	for i := range il0 {
		il0[i] = bank.RandomProtein(rng, subLen)
	}
	il1 := bank.RandomProtein(rng, 64*subLen)
	cfg := hwsim.PSCConfig{
		NumPEs: 64, SlotSize: 8, FIFODepth: 64,
		SubLen: subLen, Threshold: 45, Matrix: matrix.BLOSUM62,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, err := hwsim.NewOperator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := op.LoadIL0(il0); err != nil {
			b.Fatal(err)
		}
		if _, err := op.StreamIL1(il1, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- streaming shard engine vs batch -----------------------------------

// BenchmarkStreamingOverlap compares the batch driver (steps strictly
// sequential, core.CompareBatch) against the streaming shard engine at
// 1, 2 and 4 shards in flight between stages. Every configuration
// moves identical work with one worker per stage, so the reported
// overlap_gain is purely the host/device-style stage overlap — step 3
// of earlier shards running while step 2 of later shards is still
// extending — not intra-stage parallelism. This is the perf baseline
// for future pipeline PRs. (The gain exceeds 1 only with
// GOMAXPROCS > 1; on one core it measures the engine's overhead.)
func BenchmarkStreamingOverlap(b *testing.B) {
	w, _, _ := workload(b)
	bk := w.Banks[len(w.Banks)-1]
	opt := core.DefaultOptions()
	opt.Seed = w.Scale.SeedModel
	opt.N = w.Scale.N
	opt.UngappedThreshold = w.Scale.Threshold
	opt.Workers = 1

	var batchSec float64
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t0 := testingClock()
			if _, err := core.CompareBatch(bk, w.Frames, opt); err != nil {
				b.Fatal(err)
			}
			batchSec = testingClock() - t0
		}
	})
	for _, inflight := range []int{1, 2, 4} {
		inflight := inflight
		b.Run(fmt.Sprintf("stream/inflight=%d", inflight), func(b *testing.B) {
			sopt := opt
			sopt.Pipeline = pipeline.Config{
				ShardSize:    (bk.Len() + 7) / 8, // 8 shards
				InFlight:     inflight,
				Step2Workers: 1,
				Step3Workers: 1,
			}
			var streamSec float64
			for i := 0; i < b.N; i++ {
				t0 := testingClock()
				if _, err := core.Compare(bk, w.Frames, sopt); err != nil {
					b.Fatal(err)
				}
				streamSec = testingClock() - t0
			}
			if batchSec > 0 && streamSec > 0 {
				b.ReportMetric(batchSec/streamSec, "overlap_gain")
			}
		})
	}
}

// BenchmarkAblationHostParallel probes the paper's closing question:
// with multicore hosts, where is the host/FPGA dispatch break-even?
func BenchmarkAblationHostParallel(b *testing.B) {
	w, _, ixs := workload(b)
	ixB := ixs[len(ixs)-1]
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				t0 := testingClock()
				res, err := ungapped.Run(ixB, wlIxG, ungapped.Config{
					Matrix: matrix.BLOSUM62, Threshold: w.Scale.Threshold, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				hostSec := testingClock() - t0
				rep := deviceEstimate(b, ixB, 192, 1, w.Scale.Threshold, len(res.Hits))
				ratio = hostSec / rep.Seconds
			}
			b.ReportMetric(ratio, "host/device")
		})
	}
}
