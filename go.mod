module seedblast

go 1.24
