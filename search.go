package seedblast

// This file is the v2 public search API: a Searcher constructed once
// from functional options, reusable indexed Targets for every
// comparison shape, and a single Search entry point with end-to-end
// streaming results.
//
//	searcher, err := seedblast.NewSearcher(
//		seedblast.WithEngine(seedblast.EngineRASC),
//		seedblast.WithMaxEValue(1e-3),
//	)
//	target := seedblast.NewGenomeTarget(genome, nil) // indexed once, reused
//	for m, err := range searcher.Search(ctx, seedblast.NewProteinTarget(bank), target).Matches() {
//		...
//	}
//
// The v1 entry points (Compare, CompareGenome, CompareDNAQueries,
// CompareGenomes) remain as deprecated adapters over this API,
// equivalence-tested bit-identical, ordering included.

import (
	"seedblast/internal/core"
	"seedblast/internal/gapped"
	"seedblast/internal/matrix"
	"seedblast/internal/stats"
	"seedblast/internal/translate"
)

// v2 search types, re-exported.
type (
	// Searcher runs seed-based comparisons; build it once with
	// NewSearcher and reuse it (safe for concurrent use).
	Searcher = core.Searcher
	// Option configures a Searcher (see the With* constructors).
	Option = core.Option
	// Target is one side of a comparison: sequences plus their
	// prebuilt, reusable step-1 indexes. Implemented by ProteinTarget,
	// GenomeTarget and DNATarget.
	Target = core.Target
	// ProteinTarget is a protein bank as a search side.
	ProteinTarget = core.ProteinTarget
	// GenomeTarget is a six-frame-translated genome as a search side.
	GenomeTarget = core.GenomeTarget
	// DNATarget is a set of six-frame-translated DNA sequences as a
	// search side (the blastx query).
	DNATarget = core.DNATarget
	// Results is a streaming search outcome: Matches() streams, while
	// Collect() materializes; Summary() reports counters and timings
	// once the stream is drained.
	Results = core.Results
	// Match is one reported similarity region with both engine and
	// source coordinates.
	Match = core.Match
	// Locus is one side of a Match in source coordinates (sequence,
	// frame, nucleotide span).
	Locus = core.Locus
	// Summary is the non-match part of a search outcome.
	Summary = core.Summary
	// Alignment is one engine alignment (the coordinate core of every
	// match and v1 result entry).
	Alignment = gapped.Alignment
	// Span is a half-open residue range within a sequence.
	Span = gapped.Span
	// Frame identifies a reading frame (+1..+3, -1..-3) of a
	// translated search side.
	Frame = translate.Frame
	// SearchSpace fixes the database geometry used for E-value
	// statistics (see WithSearchSpace).
	SearchSpace = stats.SearchSpace
	// GappedConfig parameterises step 3 (see WithGapped).
	GappedConfig = gapped.Config
	// Matrix is a residue scoring matrix (see WithMatrix).
	Matrix = matrix.Matrix
)

// NewSearcher builds a Searcher from the pipeline defaults with the
// given options applied in order.
func NewSearcher(opts ...Option) (*Searcher, error) { return core.NewSearcher(opts...) }

// NewProteinTarget wraps a protein bank as a reusable search side.
func NewProteinTarget(b *Bank) *ProteinTarget { return core.NewProteinTarget(b) }

// NewGenomeTarget translates an encoded genome (EncodeDNA) into its
// six reading frames under code (nil = standard) and wraps it as a
// reusable search side. Its step-1 index is built on first use and
// shared by every later search with the same seed model and N.
func NewGenomeTarget(genome []byte, code *GeneticCode) *GenomeTarget {
	return core.NewGenomeTarget(genome, code)
}

// NewDNATarget translates each encoded DNA sequence into its six
// reading frames under code (nil = standard) and wraps the combined
// frame set as a reusable search side.
func NewDNATarget(queries [][]byte, code *GeneticCode) *DNATarget {
	return core.NewDNATarget(queries, code)
}

// OpenTarget loads a seeddb file (cmd/seeddb, or an Index written with
// WriteTo) as a ready protein search target: the bank and its prebuilt
// step-1 index are mapped from disk, so a Searcher with the matching
// seed configuration skips indexing entirely. Search results are
// bit-identical to an in-memory build of the same bank. Call Close on
// the returned target to release the file mapping.
func OpenTarget(path string) (*ProteinTarget, error) { return core.OpenTarget(path) }

// ResultFrom assembles a v1 Result from collected v2 matches and
// their summary — the bridge for code that still consumes the
// materialized v1 shapes.
func ResultFrom(ms []Match, sum *Summary) *Result { return core.ResultFrom(ms, sum) }

// GenomeResultFrom assembles a v1 GenomeResult (tblastn) from
// collected v2 matches against a GenomeTarget.
func GenomeResultFrom(ms []Match, sum *Summary, genomeLen int) *GenomeResult {
	return core.GenomeResultFrom(ms, sum, genomeLen)
}

// Functional options, re-exported.

// WithOptions replaces the whole option set with a v1 Options value —
// the migration bridge (SubjectIndex is ignored; targets own indexes).
func WithOptions(o Options) Option { return core.WithOptions(o) }

// WithSeed selects the seed model (step 1).
func WithSeed(m SeedModel) Option { return core.WithSeed(m) }

// WithNeighborhood sets the neighbourhood extension N (windows are
// W+2N).
func WithNeighborhood(n int) Option { return core.WithNeighborhood(n) }

// WithMatrix sets the scoring matrix.
func WithMatrix(m *Matrix) Option { return core.WithMatrix(m) }

// WithUngappedThreshold sets the step-2 score threshold.
func WithUngappedThreshold(threshold int) Option { return core.WithUngappedThreshold(threshold) }

// WithEngine selects where step 2 runs: EngineCPU, EngineRASC or
// EngineMulti.
func WithEngine(e Engine) Option { return core.WithEngine(e) }

// WithRASC configures the simulated accelerator.
func WithRASC(r RASCOptions) Option { return core.WithRASC(r) }

// WithWorkers sets the host parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithStep2Kernel selects the CPU step-2 inner-loop implementation
// (KernelAuto, KernelScalar or KernelBlocked); results are
// bit-identical across kernels.
func WithStep2Kernel(k Kernel) Option { return core.WithStep2Kernel(k) }

// WithPipeline tunes the streaming shard engine.
func WithPipeline(cfg PipelineConfig) Option { return core.WithPipeline(cfg) }

// WithMaxCandidates enables the two-stage prefilter: each query's
// subjects are ranked by a cheap hashed-seed diagonal-band score and
// only the top k survive into ungapped and gapped extension. k = 0
// (the default) disables the stage and the search is bit-identical to
// one without it; E-values are unchanged for any k because the
// statistics keep the full subject bank's geometry.
func WithMaxCandidates(k int) Option { return core.WithMaxCandidates(k) }

// WithGapped replaces the step-3 configuration.
func WithGapped(cfg GappedConfig) Option { return core.WithGapped(cfg) }

// WithMaxEValue sets the significance cutoff.
func WithMaxEValue(ev float64) Option { return core.WithMaxEValue(ev) }

// WithTraceback records alignment operations for reporting.
func WithTraceback(on bool) Option { return core.WithTraceback(on) }

// WithSearchSpace fixes the database geometry for E-value statistics
// (the scatter-gather volume context).
func WithSearchSpace(sp SearchSpace) Option { return core.WithSearchSpace(sp) }

// WithGeneticCode selects the translation table for DNA and genome
// targets built without an explicit code (nil means the standard code).
func WithGeneticCode(code *GeneticCode) Option { return core.WithGeneticCode(code) }
