//lint:file-ignore SA1019 this file deliberately exercises the deprecated v1 adapters to pin them against v2

package seedblast_test

import (
	"context"
	"reflect"
	"testing"

	"seedblast"
	"seedblast/internal/core"
	"seedblast/internal/gapped"
	"seedblast/internal/stats"
	"seedblast/internal/translate"
	"seedblast/internal/ungapped"
)

// Compile-time exhaustiveness gate for the v2 facade: every exported
// v2 symbol must round-trip through its internal counterpart. A facade
// alias that drifts from its core type, or a constructor whose
// signature no longer matches, fails this file at build time — before
// any test runs. (The apidiff CI gate guards the other direction:
// accidental breaking changes to this surface.)
var (
	// Type aliases: assignability in both directions proves identity.
	_ core.Match        = seedblast.Match{}
	_ seedblast.Match   = core.Match{}
	_ core.Locus        = seedblast.Locus{}
	_ seedblast.Locus   = core.Locus{}
	_ core.Summary      = seedblast.Summary{}
	_ seedblast.Summary = core.Summary{}
	_ *core.Searcher    = (*seedblast.Searcher)(nil)
	_ *core.Results     = (*seedblast.Results)(nil)
	_ core.Option       = seedblast.Option(nil)

	_ core.Target      = (*seedblast.ProteinTarget)(nil)
	_ core.Target      = (*seedblast.GenomeTarget)(nil)
	_ core.Target      = (*seedblast.DNATarget)(nil)
	_ seedblast.Target = core.Target(nil)

	_ gapped.Alignment  = seedblast.Alignment{}
	_ gapped.Span       = seedblast.Span{}
	_ translate.Frame   = seedblast.Frame(0)
	_ stats.SearchSpace = seedblast.SearchSpace{}
	_ gapped.Config     = seedblast.GappedConfig{}

	// Constructors and option setters: exact signature matches.
	_ func(...seedblast.Option) (*seedblast.Searcher, error)       = seedblast.NewSearcher
	_ func(*seedblast.Bank) *seedblast.ProteinTarget               = seedblast.NewProteinTarget
	_ func([]byte, *seedblast.GeneticCode) *seedblast.GenomeTarget = seedblast.NewGenomeTarget
	_ func([][]byte, *seedblast.GeneticCode) *seedblast.DNATarget  = seedblast.NewDNATarget

	// v1-shape bridges.
	_ func([]seedblast.Match, *seedblast.Summary) *seedblast.Result            = seedblast.ResultFrom
	_ func([]seedblast.Match, *seedblast.Summary, int) *seedblast.GenomeResult = seedblast.GenomeResultFrom

	_ seedblast.Option                                = seedblast.WithOptions(seedblast.Options{})
	_ func(seedblast.SeedModel) seedblast.Option      = seedblast.WithSeed
	_ func(int) seedblast.Option                      = seedblast.WithNeighborhood
	_ func(*seedblast.Matrix) seedblast.Option        = seedblast.WithMatrix
	_ func(int) seedblast.Option                      = seedblast.WithUngappedThreshold
	_ func(seedblast.Engine) seedblast.Option         = seedblast.WithEngine
	_ func(seedblast.RASCOptions) seedblast.Option    = seedblast.WithRASC
	_ func(int) seedblast.Option                      = seedblast.WithWorkers
	_ func(seedblast.Kernel) seedblast.Option         = seedblast.WithStep2Kernel
	_ ungapped.Kernel                                 = seedblast.KernelBlocked
	_ seedblast.Kernel                                = ungapped.KernelScalar
	_ func(string) (seedblast.Kernel, error)          = seedblast.ParseKernel
	_ func(seedblast.PipelineConfig) seedblast.Option = seedblast.WithPipeline
	_ func(seedblast.GappedConfig) seedblast.Option   = seedblast.WithGapped
	_ func(float64) seedblast.Option                  = seedblast.WithMaxEValue
	_ func(bool) seedblast.Option                     = seedblast.WithTraceback
	_ func(seedblast.SearchSpace) seedblast.Option    = seedblast.WithSearchSpace
	_ func(*seedblast.GeneticCode) seedblast.Option   = seedblast.WithGeneticCode
)

// The Search entry point and the streaming result surface, asserted
// by use (method sets cannot be asserted by assignment alone).
func TestV2FacadeSearchSurface(t *testing.T) {
	proteins := seedblast.GenerateProteins(seedblast.ProteinConfig{N: 4, MeanLen: 80, Seed: 71})
	genome, _, err := seedblast.GenerateGenome(seedblast.GenomeConfig{
		Length: 15_000, Source: proteins, PlantCount: 2, Seed: 72,
	})
	if err != nil {
		t.Fatal(err)
	}

	searcher, err := seedblast.NewSearcher(seedblast.WithMaxEValue(10))
	if err != nil {
		t.Fatal(err)
	}
	target := seedblast.NewGenomeTarget(genome, nil)
	results := searcher.Search(context.Background(), seedblast.NewProteinTarget(proteins), target)

	var streamed []seedblast.Match
	for m, err := range results.Matches() {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, m)
	}
	if len(streamed) == 0 {
		t.Fatal("v2 facade search found nothing")
	}
	sum, err := results.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs == 0 || sum.Hits == 0 {
		t.Errorf("summary counters empty: %+v", sum)
	}

	// Collect on a fresh Results must equal the streamed sequence, and
	// both must match the deprecated v1 adapter bit-for-bit.
	collected, err := searcher.Search(context.Background(), seedblast.NewProteinTarget(proteins), target).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(collected) != len(streamed) {
		t.Fatalf("Collect returned %d matches, stream %d", len(collected), len(streamed))
	}
	opt := seedblast.DefaultOptions()
	opt.Gapped.MaxEValue = 10
	legacy, err := seedblast.CompareGenome(proteins, genome, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Matches) != len(streamed) {
		t.Fatalf("legacy adapter returned %d matches, v2 %d", len(legacy.Matches), len(streamed))
	}
	for i := range streamed {
		if !reflect.DeepEqual(streamed[i].Alignment, legacy.Matches[i].Alignment) {
			t.Fatalf("match %d diverges between v2 and the legacy adapter:\n got %+v\nwant %+v",
				i, streamed[i].Alignment, legacy.Matches[i].Alignment)
		}
	}
}
